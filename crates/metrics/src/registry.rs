//! A self-describing metrics registry and its canonical text exposition.
//!
//! Every gauge family in this crate can register its scalars into a
//! [`MetricsRegistry`] with a [`MetricDesc`] (name, kind, unit, help)
//! and a reader closure. Reading the whole registry —
//! [`MetricsRegistry::snapshot`] — is wait-free: one `O(1)` atomic root
//! read per registered scalar (the f-array / Algorithm A payoff; the
//! sharded counter's total is the one documented exception, and its
//! descriptor says so). The snapshot is the paper's read-heavy regime
//! reified: writes are per-event, snapshots happen on every status
//! query.
//!
//! The exposition format (`ruo-telem-v1`) is line-based ASCII with a
//! strict, canonical round-trip codec in the style of
//! `ruo_serve::proto`:
//!
//! ```text
//! ruo-telem-v1 <count>
//! <name> <kind> <unit> <value> <help…>
//! ```
//!
//! Names are sorted strictly ascending, values are canonical decimal
//! (no leading zeros, no signs), and the parser rejects anything
//! non-canonical — `parse(to_text(s)) == s` exactly, and whatever
//! garbage parses re-encodes to itself.
//!
//! ```
//! use ruo_metrics::{MetricDesc, MetricKind, MetricsRegistry, TelemetrySnapshot, Watermark};
//! use ruo_sim::ProcessId;
//! use std::sync::Arc;
//!
//! let peak = Arc::new(Watermark::new(4));
//! let mut reg = MetricsRegistry::new();
//! peak.register_into(&mut reg, "queue_peak", "connections", "deepest queue observed");
//! peak.record(ProcessId(1), 9);
//!
//! let snap = reg.snapshot();
//! assert_eq!(snap.get("queue_peak"), Some(9));
//! let text = snap.to_text();
//! assert_eq!(TelemetrySnapshot::parse(&text).unwrap(), snap);
//! ```

use std::fmt;

/// Schema tag of the exposition format (and of the serve `metrics` wire
/// response built on it).
pub const TELEM_SCHEMA: &str = "ruo-telem-v1";

/// How a registered scalar moves over time — what a sampler or a
/// monotonicity check may assume about successive reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonically non-decreasing total (event counts).
    Counter,
    /// A monotonically non-decreasing maximum ([`crate::Watermark`]).
    Watermark,
    /// A monotonically non-increasing minimum ([`crate::LowWatermark`];
    /// `u64::MAX` means nothing recorded yet).
    LowWatermark,
    /// A free-moving value (ratios, configured bounds, stripe totals).
    Gauge,
}

impl MetricKind {
    /// Wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Watermark => "watermark",
            MetricKind::LowWatermark => "low_watermark",
            MetricKind::Gauge => "gauge",
        }
    }

    /// Inverse of [`MetricKind::name`].
    pub fn parse(s: &str) -> Option<MetricKind> {
        Some(match s {
            "counter" => MetricKind::Counter,
            "watermark" => MetricKind::Watermark,
            "low_watermark" => MetricKind::LowWatermark,
            "gauge" => MetricKind::Gauge,
            _ => return None,
        })
    }

    /// Whether successive reads of this kind may only grow (or stay).
    pub fn monotone_up(self) -> bool {
        matches!(self, MetricKind::Counter | MetricKind::Watermark)
    }

    /// Whether successive reads of this kind may only shrink (or stay).
    pub fn monotone_down(self) -> bool {
        matches!(self, MetricKind::LowWatermark)
    }
}

/// A metric name or unit token: 1..=64 bytes of `[A-Za-z0-9_.:-]` —
/// the same alphabet as the serve wire protocol's identifiers, so every
/// registered scalar is wire-exportable as-is.
pub fn valid_metric_token(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'-'))
}

/// A self-describing scalar descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDesc {
    /// Unique scalar name (a [`valid_metric_token`]).
    pub name: String,
    /// Movement contract of the scalar.
    pub kind: MetricKind,
    /// Unit token (a [`valid_metric_token`]; use `1` for dimensionless).
    pub unit: String,
    /// One-line human description (no newlines, no leading/trailing or
    /// doubled spaces — the exposition line must stay canonical).
    pub help: String,
}

impl MetricDesc {
    /// Builds a descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the name or unit is not a valid token, or the help text
    /// is empty, multi-line, or has leading/trailing/doubled spaces.
    pub fn new(name: &str, kind: MetricKind, unit: &str, help: &str) -> Self {
        assert!(valid_metric_token(name), "bad metric name {name:?}");
        assert!(valid_metric_token(unit), "bad metric unit {unit:?}");
        assert!(help_is_canonical(help), "non-canonical help text {help:?}");
        MetricDesc {
            name: name.to_string(),
            kind,
            unit: unit.to_string(),
            help: help.to_string(),
        }
    }
}

fn help_is_canonical(help: &str) -> bool {
    !help.is_empty()
        && !help.contains('\n')
        && !help.contains("  ")
        && !help.starts_with(' ')
        && !help.ends_with(' ')
}

type Reader = Box<dyn Fn() -> u64 + Send + Sync>;

/// A registry of self-describing scalars, each read by a wait-free
/// closure. Registration happens at setup time (`&mut self`); after
/// that the registry is shared immutably and [`snapshot`]
/// (`MetricsRegistry::snapshot`) may run concurrently with every
/// recorder.
pub struct MetricsRegistry {
    /// Kept sorted by name so snapshots and expositions are stable.
    entries: Vec<(MetricDesc, Reader)>,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("scalars", &self.entries.len())
            .finish()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            entries: Vec::new(),
        }
    }

    /// Registers one scalar.
    ///
    /// # Panics
    ///
    /// Panics if a scalar with the same name is already registered.
    pub fn register(&mut self, desc: MetricDesc, reader: impl Fn() -> u64 + Send + Sync + 'static) {
        match self
            .entries
            .binary_search_by(|(d, _)| d.name.as_str().cmp(desc.name.as_str()))
        {
            Ok(_) => panic!("duplicate metric name {:?}", desc.name),
            Err(at) => self.entries.insert(at, (desc, Box::new(reader))),
        }
    }

    /// Number of registered scalars.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The descriptors, sorted by name.
    pub fn descriptors(&self) -> Vec<MetricDesc> {
        self.entries.iter().map(|(d, _)| d.clone()).collect()
    }

    /// Reads every scalar once — wait-free, `O(1)` atomic loads per
    /// scalar for every family in this crate except the sharded
    /// counter's stripe total (whose descriptor documents the `O(N)`
    /// read).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            entries: self
                .entries
                .iter()
                .map(|(d, read)| TelemetryEntry {
                    desc: d.clone(),
                    value: read(),
                })
                .collect(),
        }
    }
}

/// One scalar in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryEntry {
    /// The scalar's descriptor.
    pub desc: MetricDesc,
    /// The value read.
    pub value: u64,
}

/// A point-in-time read of every registered scalar, name-sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    entries: Vec<TelemetryEntry>,
}

/// A malformed exposition document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryError {
    /// What was wrong.
    pub detail: String,
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "telemetry error: {}", self.detail)
    }
}

impl std::error::Error for TelemetryError {}

fn terr(detail: impl Into<String>) -> TelemetryError {
    TelemetryError {
        detail: detail.into(),
    }
}

/// Canonical decimal: no empty, no signs, no leading zeros.
fn parse_value(s: &str) -> Result<u64, TelemetryError> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(terr(format!("bad value {s:?}")));
    }
    if s.len() > 1 && s.starts_with('0') {
        return Err(terr(format!("leading zero in value {s:?}")));
    }
    s.parse::<u64>()
        .map_err(|_| terr(format!("value out of range: {s:?}")))
}

impl TelemetrySnapshot {
    /// The entries, sorted by name.
    pub fn entries(&self) -> &[TelemetryEntry] {
        &self.entries
    }

    /// Looks up one scalar by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .binary_search_by(|e| e.desc.name.as_str().cmp(name))
            .ok()
            .map(|i| self.entries[i].value)
    }

    /// `(name, value)` pairs in ascending name order — the serve
    /// `metrics` wire shape.
    pub fn pairs(&self) -> Vec<(String, u64)> {
        self.entries
            .iter()
            .map(|e| (e.desc.name.clone(), e.value))
            .collect()
    }

    /// Emits the canonical `ruo-telem-v1` exposition document.
    pub fn to_text(&self) -> String {
        let mut out = format!("{TELEM_SCHEMA} {}\n", self.entries.len());
        for e in &self.entries {
            out.push_str(&format!(
                "{} {} {} {} {}\n",
                e.desc.name,
                e.desc.kind.name(),
                e.desc.unit,
                e.value,
                e.desc.help
            ));
        }
        out
    }

    /// Strict inverse of [`TelemetrySnapshot::to_text`]: rejects wrong
    /// schema/count, unsorted or duplicate names, non-canonical values,
    /// and malformed lines.
    pub fn parse(text: &str) -> Result<TelemetrySnapshot, TelemetryError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| terr("empty document"))?;
        let count = match header.split_once(' ') {
            Some((schema, n)) if schema == TELEM_SCHEMA => parse_value(n)?,
            Some((schema, _)) => return Err(terr(format!("unknown schema {schema:?}"))),
            None => return Err(terr(format!("bad header {header:?}"))),
        };
        let mut entries: Vec<TelemetryEntry> = Vec::new();
        for line in lines.by_ref() {
            let mut parts = line.splitn(5, ' ');
            let (name, kind, unit, value, help) = (
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
                parts.next().unwrap_or(""),
            );
            if !valid_metric_token(name) {
                return Err(terr(format!("bad metric name {name:?}")));
            }
            if let Some(last) = entries.last() {
                if last.desc.name.as_str() >= name {
                    return Err(terr(format!("names not strictly ascending at {name:?}")));
                }
            }
            let kind = MetricKind::parse(kind).ok_or_else(|| terr(format!("bad kind {kind:?}")))?;
            if !valid_metric_token(unit) {
                return Err(terr(format!("bad unit {unit:?}")));
            }
            let value = parse_value(value)?;
            if !help_is_canonical(help) {
                return Err(terr(format!("non-canonical help {help:?}")));
            }
            entries.push(TelemetryEntry {
                desc: MetricDesc {
                    name: name.to_string(),
                    kind,
                    unit: unit.to_string(),
                    help: help.to_string(),
                },
                value,
            });
        }
        if entries.len() as u64 != count {
            return Err(terr(format!(
                "header declares {count} scalars, document has {}",
                entries.len()
            )));
        }
        // `lines()` swallows the final newline but would also accept a
        // missing one; demand the canonical trailing newline.
        if !text.ends_with('\n') {
            return Err(terr("missing trailing newline"));
        }
        Ok(TelemetrySnapshot { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckerGauges, HealthEvent, HealthGauges, LowWatermark, Watermark};
    use ruo_sim::ProcessId;
    use std::sync::Arc;

    fn sample_registry() -> (Arc<HealthGauges>, MetricsRegistry) {
        let g = Arc::new(HealthGauges::new(2));
        let mut reg = MetricsRegistry::new();
        g.register_telemetry(&mut reg, "");
        (g, reg)
    }

    #[test]
    fn health_gauges_register_their_wire_names() {
        let (g, reg) = sample_registry();
        assert_eq!(reg.len(), 12);
        g.bump(ProcessId(0), HealthEvent::Served);
        g.bump(ProcessId(1), HealthEvent::Served);
        g.record_queue_depth(ProcessId(0), 7);
        let snap = reg.snapshot();
        assert_eq!(snap.get("served"), Some(2));
        assert_eq!(snap.get("queue_depth_peak"), Some(7));
        assert_eq!(snap.get("shed"), Some(0));
        assert_eq!(snap.get("nope"), None);
        // Names come out sorted.
        let names: Vec<&str> = snap
            .entries()
            .iter()
            .map(|e| e.desc.name.as_str())
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn exposition_round_trips_exactly() {
        let (g, mut reg) = sample_registry();
        let lo = Arc::new(LowWatermark::new(2));
        lo.register_into(&mut reg, "fastest_ns", "ns", "fastest request observed");
        g.bump(ProcessId(0), HealthEvent::Admitted);
        lo.record(ProcessId(1), 480);
        let snap = reg.snapshot();
        let text = snap.to_text();
        assert!(text.starts_with("ruo-telem-v1 13\n"));
        let back = TelemetrySnapshot::parse(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn unset_low_watermark_reads_the_sentinel() {
        let lo = Arc::new(LowWatermark::new(1));
        let mut reg = MetricsRegistry::new();
        lo.register_into(&mut reg, "best", "ns", "best seen");
        assert_eq!(reg.snapshot().get("best"), Some(u64::MAX));
        lo.record(ProcessId(0), 3);
        assert_eq!(reg.snapshot().get("best"), Some(3));
    }

    #[test]
    fn malformed_expositions_are_rejected() {
        for doc in [
            "",
            "ruo-telem-v1\n",
            "ruo-telem-v2 0\n",
            "ruo-telem-v1 1\n",                                   // count mismatch
            "ruo-telem-v1 0\na counter 1 0 help\n",               // count mismatch
            "ruo-telem-v1 1\na counter 1 0 help",                 // missing newline
            "ruo-telem-v1 1\na counter 1 00 help\n",              // leading zero
            "ruo-telem-v1 1\na counter 1 +1 help\n",              // signed value
            "ruo-telem-v1 1\na nonsense 1 0 help\n",              // bad kind
            "ruo-telem-v1 1\na counter 1 0\n",                    // missing help
            "ruo-telem-v1 1\na counter 1 0  doubled\n",           // doubled space
            "ruo-telem-v1 2\nb counter 1 0 h\na counter 1 0 h\n", // unsorted
            "ruo-telem-v1 2\na counter 1 0 h\na counter 1 0 h\n", // duplicate
            "ruo-telem-v1 01\na counter 1 0 h\n",                 // non-canonical count
        ] {
            assert!(TelemetrySnapshot::parse(doc).is_err(), "accepted {doc:?}");
        }
    }

    #[test]
    fn duplicate_registration_panics() {
        let w = Arc::new(Watermark::new(1));
        let mut reg = MetricsRegistry::new();
        w.register_into(&mut reg, "peak", "ns", "peak");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.register_into(&mut reg, "peak", "ns", "peak");
        }));
        assert!(result.is_err());
    }

    #[test]
    fn kinds_declare_their_monotonicity() {
        assert!(MetricKind::Counter.monotone_up());
        assert!(MetricKind::Watermark.monotone_up());
        assert!(MetricKind::LowWatermark.monotone_down());
        assert!(!MetricKind::Gauge.monotone_up() && !MetricKind::Gauge.monotone_down());
        for k in [
            MetricKind::Counter,
            MetricKind::Watermark,
            MetricKind::LowWatermark,
            MetricKind::Gauge,
        ] {
            assert_eq!(MetricKind::parse(k.name()), Some(k));
        }
        assert_eq!(MetricKind::parse("bogus"), None);
    }

    #[test]
    fn checker_gauges_register_and_snapshot() {
        let c = Arc::new(CheckerGauges::new(2));
        let mut reg = MetricsRegistry::new();
        c.register_telemetry(&mut reg, "checker_");
        c.record(ProcessId(0), 10, true);
        c.record(ProcessId(1), 5, false);
        let snap = reg.snapshot();
        assert_eq!(snap.get("checker_histories"), Some(2));
        assert_eq!(snap.get("checker_operations"), Some(15));
        assert_eq!(snap.get("checker_violations"), Some(1));
    }
}
