//! High- and low-water marks.

use std::fmt;
use std::sync::Arc;

use ruo_core::farray::{FArray, Min};
use ruo_core::maxreg::TreeMaxRegister;
use ruo_core::MaxRegister;
use ruo_sim::ProcessId;

use crate::{MetricDesc, MetricKind, MetricsRegistry};

/// The largest value ever recorded — a wait-free max register
/// (Algorithm A) with `O(1)` reads and `O(min(log N, log v))` records.
///
/// Use for: peak latency, largest request, highest replicated offset,
/// deepest queue depth — anything where the *maximum* is the metric and
/// reads dominate.
///
/// ```
/// use ruo_metrics::Watermark;
/// use ruo_sim::ProcessId;
///
/// let peak = Watermark::new(8);
/// peak.record(ProcessId(3), 250);
/// peak.record(ProcessId(5), 90);
/// assert_eq!(peak.get(), 250);
/// ```
pub struct Watermark {
    reg: TreeMaxRegister,
}

impl fmt::Debug for Watermark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Watermark")
            .field("value", &self.get())
            .finish()
    }
}

impl Watermark {
    /// Creates a watermark shared by `n` recorder identities. Reads `0`
    /// until something is recorded.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Watermark {
            reg: TreeMaxRegister::new(n),
        }
    }

    /// Raises the watermark to at least `value`. Each `pid` must be used
    /// by one thread at a time.
    pub fn record(&self, pid: ProcessId, value: u64) {
        self.reg.write_max(pid, value);
    }

    /// The largest value recorded so far (`0` if none) — one atomic
    /// load.
    pub fn get(&self) -> u64 {
        self.reg.read_max()
    }

    /// Registers this watermark as one self-describing scalar; each
    /// snapshot reads it with a single atomic load.
    pub fn register_into(
        self: &Arc<Self>,
        registry: &mut MetricsRegistry,
        name: &str,
        unit: &str,
        help: &str,
    ) {
        let w = Arc::clone(self);
        registry.register(
            MetricDesc::new(name, MetricKind::Watermark, unit, help),
            move || w.get(),
        );
    }
}

/// The smallest value ever recorded — an `FArray<Min>` with `O(1)`
/// reads.
///
/// Use for: fastest response seen, minimum available capacity, earliest
/// pending timestamp.
///
/// ```
/// use ruo_metrics::LowWatermark;
/// use ruo_sim::ProcessId;
///
/// let fastest = LowWatermark::new(4);
/// fastest.record(ProcessId(0), 120);
/// fastest.record(ProcessId(1), 35);
/// assert_eq!(fastest.get(), Some(35));
/// ```
pub struct LowWatermark {
    fa: FArray<Min>,
}

impl fmt::Debug for LowWatermark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LowWatermark")
            .field("value", &self.get())
            .finish()
    }
}

impl LowWatermark {
    /// Creates a low-watermark shared by `n` recorder identities.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        LowWatermark {
            fa: FArray::<Min>::new(n),
        }
    }

    /// Lowers the watermark to at most `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds `i64::MAX` (values are stored in signed
    /// words).
    pub fn record(&self, pid: ProcessId, value: u64) {
        let v = i64::try_from(value).expect("value exceeds i64::MAX");
        // Per-slot minimum keeps the slot monotone (non-increasing), as
        // FArray<Min> requires.
        if v < self.fa.slot(pid) {
            self.fa.update(pid, v);
        }
    }

    /// The smallest value recorded so far, or `None` if nothing was
    /// recorded — one atomic load.
    pub fn get(&self) -> Option<u64> {
        let v = self.fa.read();
        (v != i64::MAX).then_some(v as u64)
    }

    /// Registers this low-watermark as one self-describing scalar;
    /// `u64::MAX` is the nothing-recorded sentinel (the kind's
    /// monotone-down contract still holds: the value only ever drops
    /// from it).
    pub fn register_into(
        self: &Arc<Self>,
        registry: &mut MetricsRegistry,
        name: &str,
        unit: &str,
        help: &str,
    ) {
        let w = Arc::clone(self);
        registry.register(
            MetricDesc::new(name, MetricKind::LowWatermark, unit, help),
            move || w.get().unwrap_or(u64::MAX),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn watermark_tracks_maximum() {
        let w = Watermark::new(2);
        assert_eq!(w.get(), 0);
        w.record(ProcessId(0), 10);
        w.record(ProcessId(1), 4);
        assert_eq!(w.get(), 10);
    }

    #[test]
    fn low_watermark_tracks_minimum() {
        let w = LowWatermark::new(2);
        assert_eq!(w.get(), None);
        w.record(ProcessId(0), 10);
        assert_eq!(w.get(), Some(10));
        w.record(ProcessId(1), 25);
        assert_eq!(w.get(), Some(10));
        w.record(ProcessId(1), 3);
        assert_eq!(w.get(), Some(3));
    }

    #[test]
    fn low_watermark_ignores_higher_values_per_slot() {
        let w = LowWatermark::new(1);
        w.record(ProcessId(0), 5);
        w.record(ProcessId(0), 9); // must not raise the minimum
        assert_eq!(w.get(), Some(5));
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let hi = Arc::new(Watermark::new(4));
        let lo = Arc::new(LowWatermark::new(4));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let hi = Arc::clone(&hi);
                let lo = Arc::clone(&lo);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        let v = 1 + (i * 7 + t as u64 * 13) % 5000;
                        hi.record(ProcessId(t), v);
                        lo.record(ProcessId(t), v);
                        assert!(hi.get() >= v || hi.get() >= 1);
                        assert!(lo.get().unwrap() <= v);
                    }
                });
            }
        });
        assert!(hi.get() >= lo.get().unwrap());
    }
}
