//! Fixed-boundary histograms with wait-free recording.

use std::fmt;
use std::sync::Arc;

use ruo_core::counter::FArrayCounter;
use ruo_core::Counter;
use ruo_sim::ProcessId;

use crate::{MetricDesc, MetricKind, MetricsRegistry};

/// A histogram over fixed bucket boundaries: recording is a wait-free
/// `O(log N)` counter increment into the value's bucket; snapshots read
/// one atomic per bucket.
///
/// Buckets: boundary slice `[b_0 < b_1 < … < b_{k-1}]` produces `k + 1`
/// buckets — values `≤ b_0`, `(b_0, b_1]`, …, `> b_{k-1}`.
///
/// Snapshots are per-bucket linearizable but not atomic *across*
/// buckets: each bucket count is at least what it was when the snapshot
/// started and at most what it was when it finished (counts only grow).
/// For rate-style dashboards that is exactly the right guarantee; if you
/// need a fully consistent multi-bucket cut, pair the histogram with an
/// atomic snapshot from `ruo_core::snapshot`.
///
/// ```
/// use ruo_metrics::Histogram;
/// use ruo_sim::ProcessId;
///
/// // Latency buckets (µs): ≤1, ≤10, ≤100, ≤1000, >1000
/// let h = Histogram::new(4, &[1, 10, 100, 1_000]);
/// h.record(ProcessId(0), 7);
/// h.record(ProcessId(1), 450);
/// h.record(ProcessId(2), 5_000);
/// let snap = h.snapshot();
/// assert_eq!(snap.total(), 3);
/// assert_eq!(snap.bucket_counts(), &[0, 1, 0, 1, 1]);
/// ```
pub struct Histogram {
    /// Upper-inclusive boundaries, strictly increasing.
    boundaries: Vec<u64>,
    /// One counter per bucket (`boundaries.len() + 1` buckets).
    counters: Vec<FArrayCounter>,
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("boundaries", &self.boundaries)
            .field("counts", &self.snapshot().bucket_counts().to_vec())
            .finish()
    }
}

impl Histogram {
    /// Creates a histogram shared by `n` recorder identities with the
    /// given strictly increasing upper-inclusive boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `boundaries` is empty, or the boundaries are
    /// not strictly increasing.
    pub fn new(n: usize, boundaries: &[u64]) -> Self {
        assert!(!boundaries.is_empty(), "at least one boundary required");
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        Histogram {
            boundaries: boundaries.to_vec(),
            counters: (0..=boundaries.len())
                .map(|_| FArrayCounter::new(n))
                .collect(),
        }
    }

    /// The bucket index `value` falls into.
    fn bucket_of(&self, value: u64) -> usize {
        self.boundaries.partition_point(|&b| b < value)
    }

    /// Records one observation.
    pub fn record(&self, pid: ProcessId, value: u64) {
        self.counters[self.bucket_of(value)].increment(pid);
    }

    /// Number of buckets (`boundaries + 1`).
    pub fn buckets(&self) -> usize {
        self.counters.len()
    }

    /// The bucket boundaries.
    pub fn boundaries(&self) -> &[u64] {
        &self.boundaries
    }

    /// Reads one bucket's count (one atomic load).
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= self.buckets()`.
    pub fn bucket_count(&self, bucket: usize) -> u64 {
        self.counters[bucket].read()
    }

    /// Reads every bucket (one atomic load each).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            boundaries: self.boundaries.clone(),
            counts: self.counters.iter().map(|c| c.read()).collect(),
        }
    }

    /// Registers one scalar per bucket — `<name>_le_<b>` for each
    /// boundary plus `<name>_gt_<last>` for the overflow bucket. The
    /// counts are per-bucket (not cumulative) so every scalar is one
    /// `O(1)` counter-root load.
    pub fn register_telemetry(
        self: &Arc<Self>,
        registry: &mut MetricsRegistry,
        name: &str,
        unit: &str,
        help: &str,
    ) {
        for (i, &b) in self.boundaries.iter().enumerate() {
            let h = Arc::clone(self);
            registry.register(
                MetricDesc::new(
                    &format!("{name}_le_{b}"),
                    MetricKind::Counter,
                    unit,
                    &format!("{help} (bucket le {b})"),
                ),
                move || h.counters[i].read(),
            );
        }
        let last = *self.boundaries.last().expect("at least one boundary");
        let overflow = self.boundaries.len();
        let h = Arc::clone(self);
        registry.register(
            MetricDesc::new(
                &format!("{name}_gt_{last}"),
                MetricKind::Counter,
                unit,
                &format!("{help} (overflow bucket gt {last})"),
            ),
            move || h.counters[overflow].read(),
        );
    }
}

/// A point-in-time read of a [`Histogram`]'s buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    boundaries: Vec<u64>,
    counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Per-bucket counts (`boundaries + 1` entries; the last is the
    /// overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another snapshot into this one, bucket by bucket
    /// (saturating — a merged count never wraps). Merging is how
    /// per-shard or per-batch histograms roll up into one distribution;
    /// both snapshots must bucket identically for the counts to be
    /// addable.
    ///
    /// # Panics
    ///
    /// Panics if the two snapshots have different boundaries.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.boundaries, other.boundaries,
            "snapshots with different boundaries cannot be merged"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c = c.saturating_add(*o);
        }
    }

    /// An upper bound for the `q`-quantile (`0 < q ≤ 1`): the boundary
    /// of the first bucket whose cumulative count reaches `q · total`.
    /// Returns `None` for an empty histogram or when the quantile lands
    /// in the unbounded overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `(0, 1]`.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = (q * total as f64).ceil() as u64;
        let mut cumulative = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return self.boundaries.get(i).copied();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn hist() -> Histogram {
        Histogram::new(2, &[10, 100, 1000])
    }

    #[test]
    fn values_land_in_the_right_buckets() {
        let h = hist();
        // ≤10 | ≤100 | ≤1000 | >1000
        h.record(ProcessId(0), 0);
        h.record(ProcessId(0), 10);
        h.record(ProcessId(0), 11);
        h.record(ProcessId(0), 100);
        h.record(ProcessId(0), 999);
        h.record(ProcessId(0), 1001);
        assert_eq!(h.snapshot().bucket_counts(), &[2, 2, 1, 1]);
        assert_eq!(h.snapshot().total(), 6);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = hist();
        for _ in 0..90 {
            h.record(ProcessId(0), 5); // bucket ≤10
        }
        for _ in 0..10 {
            h.record(ProcessId(0), 500); // bucket ≤1000
        }
        let s = h.snapshot();
        assert_eq!(s.quantile_upper_bound(0.5), Some(10));
        assert_eq!(s.quantile_upper_bound(0.9), Some(10));
        assert_eq!(s.quantile_upper_bound(0.95), Some(1000));
        assert_eq!(s.quantile_upper_bound(1.0), Some(1000));
    }

    #[test]
    fn overflow_quantile_is_none() {
        let h = hist();
        h.record(ProcessId(0), 1_000_000);
        assert_eq!(h.snapshot().quantile_upper_bound(1.0), None);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert_eq!(hist().snapshot().quantile_upper_bound(0.5), None);
        assert_eq!(hist().snapshot().total(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_boundaries_are_rejected() {
        let _ = Histogram::new(1, &[10, 10]);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn zero_quantile_is_rejected() {
        let _ = hist().snapshot().quantile_upper_bound(0.0);
    }

    #[test]
    fn single_sample_pins_every_quantile() {
        let h = hist();
        h.record(ProcessId(0), 42); // bucket ≤100
        let s = h.snapshot();
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile_upper_bound(q), Some(100), "q={q}");
        }
    }

    #[test]
    fn merge_of_disjoint_ranges_covers_both() {
        let low = hist();
        for _ in 0..3 {
            low.record(ProcessId(0), 5); // bucket ≤10 only
        }
        let high = hist();
        for _ in 0..5 {
            high.record(ProcessId(1), 500); // bucket ≤1000 only
        }
        let mut merged = low.snapshot();
        merged.merge(&high.snapshot());
        assert_eq!(merged.bucket_counts(), &[3, 0, 5, 0]);
        assert_eq!(merged.total(), 8);
        // Quantiles see the union distribution.
        assert_eq!(merged.quantile_upper_bound(0.25), Some(10));
        assert_eq!(merged.quantile_upper_bound(1.0), Some(1000));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = hist();
        h.record(ProcessId(0), 7);
        let mut s = h.snapshot();
        let before = s.clone();
        s.merge(&hist().snapshot());
        assert_eq!(s, before);
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = HistogramSnapshot {
            boundaries: vec![10],
            counts: vec![u64::MAX - 1, 3],
        };
        let b = HistogramSnapshot {
            boundaries: vec![10],
            counts: vec![5, 4],
        };
        a.merge(&b);
        assert_eq!(a.bucket_counts(), &[u64::MAX, 7]);
    }

    #[test]
    #[should_panic(expected = "different boundaries")]
    fn merge_rejects_mismatched_boundaries() {
        let mut a = Histogram::new(1, &[10]).snapshot();
        a.merge(&Histogram::new(1, &[20]).snapshot());
    }

    #[test]
    fn concurrent_recording_counts_exactly() {
        let h = Arc::new(Histogram::new(4, &[10, 100]));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(ProcessId(t), i % 200);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.total(), 4000);
        // i % 200: values 0..=10 (11 of 200), 11..=100 (90), 101..=199 (99).
        assert_eq!(s.bucket_counts(), &[4 * 11 * 5, 4 * 90 * 5, 4 * 99 * 5]);
    }

    #[test]
    fn snapshot_totals_are_monotone() {
        let h = Arc::new(Histogram::new(2, &[50]));
        std::thread::scope(|s| {
            let writer = {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..2000u64 {
                        h.record(ProcessId(0), i % 100);
                    }
                })
            };
            let mut last = 0;
            for _ in 0..200 {
                let t = h.snapshot().total();
                assert!(t >= last, "total regressed");
                last = t;
            }
            writer.join().unwrap();
        });
        assert_eq!(h.snapshot().total(), 2000);
    }
}
