//! Deterministic exponential backoff with bounded jitter.

use std::fmt;
use std::time::Duration;

use ruo_sim::SplitMix64;

/// Exponential backoff with multiplicative, seeded jitter.
///
/// Attempt `a` (0-based) nominally waits `base · 2^a`, capped at `cap`.
/// The actual delay is the nominal delay scaled by a factor drawn
/// uniformly from `[1 - jitter, 1 + jitter]` using the caller's
/// [`SplitMix64`] — deterministic per seed, so a chaos run that retried
/// can be replayed byte-for-byte. The jittered delay is clamped to
/// `cap`, so [`BackoffPolicy::bounds`] is always honoured.
///
/// ```
/// use std::time::Duration;
/// use ruo_metrics::BackoffPolicy;
/// use ruo_sim::SplitMix64;
///
/// let policy = BackoffPolicy::new(Duration::from_millis(2), Duration::from_millis(64), 0.25);
/// let mut rng = SplitMix64::new(7);
/// let d = policy.delay(3, &mut rng); // nominal 16ms, jittered ±25%
/// let (lo, hi) = policy.bounds(3);
/// assert!(d >= lo && d <= hi);
/// ```
#[derive(Clone, Copy)]
pub struct BackoffPolicy {
    base: Duration,
    cap: Duration,
    jitter: f64,
}

impl fmt::Debug for BackoffPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackoffPolicy")
            .field("base", &self.base)
            .field("cap", &self.cap)
            .field("jitter", &self.jitter)
            .finish()
    }
}

impl BackoffPolicy {
    /// Creates a policy. `jitter` is a fraction in `[0, 1)`: `0.25`
    /// means each delay is scaled by a uniform factor in `[0.75, 1.25]`.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is not in `[0, 1)` or `base > cap`.
    pub fn new(base: Duration, cap: Duration, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        assert!(base <= cap, "base must not exceed cap");
        BackoffPolicy { base, cap, jitter }
    }

    /// The initial (attempt-0) nominal delay.
    pub fn base(&self) -> Duration {
        self.base
    }

    /// The largest delay any attempt can produce.
    pub fn cap(&self) -> Duration {
        self.cap
    }

    /// The jitter fraction.
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Nominal (un-jittered) delay for 0-based `attempt`: `base · 2^attempt`,
    /// saturating at `cap`.
    pub fn nominal(&self, attempt: u32) -> Duration {
        let base_ns = self.base.as_nanos();
        // `u128 <<` discards overflowed bits, so saturate explicitly.
        let scaled = if attempt >= 64 {
            u128::MAX
        } else {
            base_ns.saturating_mul(1u128 << attempt)
        };
        Duration::from_nanos(scaled.min(self.cap.as_nanos()).min(u64::MAX as u128) as u64)
    }

    /// Inclusive `[min, max]` envelope every [`BackoffPolicy::delay`]
    /// call for `attempt` stays inside, regardless of seed.
    pub fn bounds(&self, attempt: u32) -> (Duration, Duration) {
        let nominal = self.nominal(attempt).as_nanos() as f64;
        let lo = Duration::from_nanos((nominal * (1.0 - self.jitter)) as u64);
        let hi = Duration::from_nanos((nominal * (1.0 + self.jitter)) as u64);
        (lo.min(self.cap), hi.min(self.cap))
    }

    /// Jittered delay for 0-based `attempt`, drawn from `rng`.
    pub fn delay(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let nominal = self.nominal(attempt).as_nanos() as f64;
        // Uniform in [0, 1): 53 high bits of one SplitMix64 output.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * unit;
        let d = Duration::from_nanos((nominal * factor) as u64);
        d.min(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BackoffPolicy {
        BackoffPolicy::new(Duration::from_micros(500), Duration::from_millis(50), 0.2)
    }

    #[test]
    fn nominal_doubles_until_the_cap() {
        let p = policy();
        assert_eq!(p.nominal(0), Duration::from_micros(500));
        assert_eq!(p.nominal(1), Duration::from_millis(1));
        assert_eq!(p.nominal(4), Duration::from_millis(8));
        assert_eq!(p.nominal(7), Duration::from_millis(50)); // 64ms capped
        assert_eq!(p.nominal(63), Duration::from_millis(50));
        assert_eq!(p.nominal(200), Duration::from_millis(50)); // shift overflow saturates
    }

    #[test]
    fn delays_stay_within_the_configured_jitter_bounds() {
        // The satellite-3 sweep: every (seed, attempt) pair lands inside
        // the advertised envelope and never exceeds the cap.
        let p = policy();
        for seed in 0..64u64 {
            let mut rng = SplitMix64::new(seed);
            for attempt in 0..12u32 {
                let d = p.delay(attempt, &mut rng);
                let (lo, hi) = p.bounds(attempt);
                assert!(
                    d >= lo && d <= hi,
                    "seed {seed} attempt {attempt}: {d:?} outside [{lo:?}, {hi:?}]"
                );
                assert!(d <= p.cap());
            }
        }
    }

    #[test]
    fn jitter_actually_spreads_delays() {
        let p = policy();
        let mut rng = SplitMix64::new(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            seen.insert(p.delay(3, &mut rng).as_nanos());
        }
        assert!(seen.len() > 16, "only {} distinct delays", seen.len());
    }

    #[test]
    fn zero_jitter_is_exactly_nominal() {
        let p = BackoffPolicy::new(Duration::from_millis(1), Duration::from_millis(16), 0.0);
        let mut rng = SplitMix64::new(9);
        for attempt in 0..8 {
            assert_eq!(p.delay(attempt, &mut rng), p.nominal(attempt));
        }
    }

    #[test]
    fn same_seed_replays_the_same_delays() {
        let p = policy();
        let a: Vec<_> = {
            let mut rng = SplitMix64::new(77);
            (0..10).map(|i| p.delay(i, &mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = SplitMix64::new(77);
            (0..10).map(|i| p.delay(i, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn rejects_full_jitter() {
        let _ = BackoffPolicy::new(Duration::from_millis(1), Duration::from_millis(2), 1.0);
    }
}
