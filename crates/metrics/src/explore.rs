//! Gauges for bounded model-checking runs.

use std::fmt;

use std::sync::Arc;

use ruo_core::farray::{FArray, Sum};
use ruo_sim::explore::ExploreStats;
use ruo_sim::{ProcessId, Word};

use crate::{MetricDesc, MetricKind, MetricsRegistry, Watermark};

/// Aggregated counters for a fleet of [`ruo_sim::explore`] runs.
///
/// Each worker thread explores a different scope (or shard of one) and
/// reports its [`ExploreStats`] here; readers — a progress printer, a CI
/// smoke harness — see exact totals with `O(1)` reads, courtesy of the
/// f-array's root-cached sums. Totals are add-by-`k` (a whole run's
/// counters land in one `record` call), which is why these are
/// [`FArray<Sum>`] slots updated with `update_with` rather than
/// unit-increment counters.
///
/// ```
/// use ruo_metrics::ExploreGauges;
/// use ruo_sim::explore::ExploreStats;
/// use ruo_sim::ProcessId;
///
/// let gauges = ExploreGauges::new(2);
/// gauges.record(
///     ProcessId(0),
///     &ExploreStats {
///         schedules: 132,
///         pruned_branches: 40,
///         executed_steps: 700,
///         replay_steps_saved: 1_900,
///         peak_depth: 8,
///         crash_branches: 12,
///         reads: 0,
///         writes: 0,
///         cas_ok: 0,
///         cas_fail: 0,
///     },
/// );
/// assert_eq!(gauges.schedules(), 132);
/// assert_eq!(gauges.peak_depth(), 8);
/// assert_eq!(gauges.crash_branches(), 12);
/// ```
pub struct ExploreGauges {
    schedules: FArray<Sum>,
    pruned_branches: FArray<Sum>,
    executed_steps: FArray<Sum>,
    replay_steps_saved: FArray<Sum>,
    crash_branches: FArray<Sum>,
    peak_depth: Watermark,
}

impl fmt::Debug for ExploreGauges {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExploreGauges")
            .field("schedules", &self.schedules())
            .field("pruned_branches", &self.pruned_branches())
            .field("executed_steps", &self.executed_steps())
            .field("replay_steps_saved", &self.replay_steps_saved())
            .field("crash_branches", &self.crash_branches())
            .field("peak_depth", &self.peak_depth())
            .finish()
    }
}

/// Clamps an exploration counter into a [`Word`] slot delta.
fn to_delta(v: u64) -> Word {
    Word::try_from(v).unwrap_or(Word::MAX)
}

impl ExploreGauges {
    /// Creates gauges shared by `n` explorer identities.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        ExploreGauges {
            schedules: FArray::new(n),
            pruned_branches: FArray::new(n),
            executed_steps: FArray::new(n),
            replay_steps_saved: FArray::new(n),
            crash_branches: FArray::new(n),
            peak_depth: Watermark::new(n),
        }
    }

    /// Folds one finished run's counters into the totals. Wait-free:
    /// five single-writer slot updates plus one max-register write.
    pub fn record(&self, pid: ProcessId, stats: &ExploreStats) {
        self.schedules
            .update_with(pid, |cur| cur + to_delta(stats.schedules as u64));
        self.pruned_branches
            .update_with(pid, |cur| cur + to_delta(stats.pruned_branches as u64));
        self.executed_steps
            .update_with(pid, |cur| cur + to_delta(stats.executed_steps));
        self.replay_steps_saved
            .update_with(pid, |cur| cur + to_delta(stats.replay_steps_saved));
        self.crash_branches
            .update_with(pid, |cur| cur + to_delta(stats.crash_branches as u64));
        self.peak_depth.record(pid, stats.peak_depth as u64);
    }

    /// Total complete schedules checked across all recorded runs.
    pub fn schedules(&self) -> u64 {
        self.schedules.read() as u64
    }

    /// Total sleep-set branch skips across all recorded runs.
    pub fn pruned_branches(&self) -> u64 {
        self.pruned_branches.read() as u64
    }

    /// Total shared-memory events executed across all recorded runs.
    pub fn executed_steps(&self) -> u64 {
        self.executed_steps.read() as u64
    }

    /// Total replay work avoided by snapshot/restore, in memory events.
    pub fn replay_steps_saved(&self) -> u64 {
        self.replay_steps_saved.read() as u64
    }

    /// Total crash branches taken across all recorded runs.
    pub fn crash_branches(&self) -> u64 {
        self.crash_branches.read() as u64
    }

    /// Deepest DFS prefix any recorded run reached.
    pub fn peak_depth(&self) -> u64 {
        self.peak_depth.get()
    }

    /// Registers every gauge under `prefix` — one `O(1)` root read per
    /// scalar.
    pub fn register_telemetry(self: &Arc<Self>, registry: &mut MetricsRegistry, prefix: &str) {
        type Row = (
            &'static str,
            fn(&ExploreGauges) -> &FArray<Sum>,
            &'static str,
            &'static str,
        );
        let counters: [Row; 5] = [
            (
                "schedules",
                |g| &g.schedules,
                "schedules",
                "complete schedules checked",
            ),
            (
                "pruned_branches",
                |g| &g.pruned_branches,
                "branches",
                "sleep-set branch skips",
            ),
            (
                "executed_steps",
                |g| &g.executed_steps,
                "events",
                "shared-memory events executed",
            ),
            (
                "replay_steps_saved",
                |g| &g.replay_steps_saved,
                "events",
                "replay work avoided by snapshot-restore",
            ),
            (
                "crash_branches",
                |g| &g.crash_branches,
                "branches",
                "crash branches taken",
            ),
        ];
        for (name, field, unit, help) in counters {
            let g = Arc::clone(self);
            registry.register(
                MetricDesc::new(&format!("{prefix}{name}"), MetricKind::Counter, unit, help),
                move || field(&g).read() as u64,
            );
        }
        let g = Arc::clone(self);
        registry.register(
            MetricDesc::new(
                &format!("{prefix}peak_depth"),
                MetricKind::Watermark,
                "events",
                "deepest DFS prefix reached",
            ),
            move || g.peak_depth.get(),
        );
    }

    /// `replay_steps_saved / executed_steps`: how many times over the
    /// incremental explorer would have re-paid its executed work under
    /// full-prefix replay. `0.0` until something has been recorded.
    pub fn replay_savings_factor(&self) -> f64 {
        let executed = self.executed_steps();
        if executed == 0 {
            return 0.0;
        }
        self.replay_steps_saved() as f64 / executed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn stats(
        schedules: usize,
        pruned: usize,
        steps: u64,
        saved: u64,
        depth: usize,
    ) -> ExploreStats {
        ExploreStats {
            schedules,
            pruned_branches: pruned,
            executed_steps: steps,
            replay_steps_saved: saved,
            peak_depth: depth,
            crash_branches: schedules / 2,
            reads: 0,
            writes: 0,
            cas_ok: 0,
            cas_fail: 0,
        }
    }

    #[test]
    fn crash_branches_accumulate() {
        let g = ExploreGauges::new(2);
        g.record(ProcessId(0), &stats(10, 0, 50, 0, 3));
        g.record(ProcessId(1), &stats(6, 0, 20, 0, 2));
        assert_eq!(g.crash_branches(), 5 + 3);
    }

    #[test]
    fn totals_sum_and_depth_takes_the_max() {
        let g = ExploreGauges::new(2);
        g.record(ProcessId(0), &stats(100, 10, 500, 1_500, 6));
        g.record(ProcessId(1), &stats(32, 5, 200, 400, 8));
        assert_eq!(g.schedules(), 132);
        assert_eq!(g.pruned_branches(), 15);
        assert_eq!(g.executed_steps(), 700);
        assert_eq!(g.replay_steps_saved(), 1_900);
        assert_eq!(g.peak_depth(), 8);
    }

    #[test]
    fn repeated_records_accumulate_per_slot() {
        let g = ExploreGauges::new(1);
        for _ in 0..3 {
            g.record(ProcessId(0), &stats(10, 1, 50, 75, 4));
        }
        assert_eq!(g.schedules(), 30);
        assert_eq!(g.replay_steps_saved(), 225);
        assert_eq!(g.peak_depth(), 4);
    }

    #[test]
    fn savings_factor_is_zero_before_any_record() {
        let g = ExploreGauges::new(1);
        assert_eq!(g.replay_savings_factor(), 0.0);
        g.record(ProcessId(0), &stats(1, 0, 100, 300, 2));
        assert!((g.replay_savings_factor() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_records_never_lose_counts() {
        let n = 4;
        let runs = 100;
        let g = Arc::new(ExploreGauges::new(n));
        std::thread::scope(|s| {
            for t in 0..n {
                let g = Arc::clone(&g);
                s.spawn(move || {
                    for _ in 0..runs {
                        g.record(ProcessId(t), &stats(3, 1, 10, 20, t + 1));
                    }
                });
            }
        });
        let runs = runs as u64;
        let n = n as u64;
        assert_eq!(g.schedules(), 3 * runs * n);
        assert_eq!(g.pruned_branches(), runs * n);
        assert_eq!(g.executed_steps(), 10 * runs * n);
        assert_eq!(g.replay_steps_saved(), 20 * runs * n);
        assert_eq!(g.peak_depth(), n);
    }
}
