//! Snapshot-monotonicity stress: a `TelemetrySnapshot` taken
//! mid-recording must never observe a counter or watermark below a
//! previously returned value, nor a low-watermark above one, across
//! every registered gauge family at once.
//!
//! Eight writer threads hammer one registry's worth of families while
//! a reader thread snapshots in a tight loop and checks every scalar
//! against the last snapshot according to its declared [`MetricKind`]
//! monotonicity. This is the registry-level restatement of the paper's
//! guarantee: reads are wait-free and linearizable per scalar, so the
//! per-scalar timeline can only move the way the kind says it does.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ruo_core::counter::ShardedCounter;
use ruo_core::Counter as _;
use ruo_metrics::{
    CheckerGauges, ExploreGauges, HealthEvent, HealthGauges, Histogram, LatencyTracker,
    LowWatermark, MetricsRegistry, ProgressCertifier, ProgressGauge, SeriesSampler, ShardGauges,
    TelemetrySnapshot, Watermark,
};
use ruo_sim::explore::ExploreStats;
use ruo_sim::{ProcessId, SplitMix64};

const WRITERS: usize = 8;
const OPS_PER_WRITER: u64 = 3_000;

struct Families {
    health: Arc<HealthGauges>,
    checker: Arc<CheckerGauges>,
    explore: Arc<ExploreGauges>,
    certifier: Arc<ProgressCertifier>,
    progress: Arc<ProgressGauge>,
    peak: Arc<Watermark>,
    best: Arc<LowWatermark>,
    hist: Arc<Histogram>,
    latency: Arc<LatencyTracker>,
    sharded: Arc<ShardedCounter>,
}

fn build() -> (Families, Arc<MetricsRegistry>) {
    let fam = Families {
        health: Arc::new(HealthGauges::new(WRITERS)),
        checker: Arc::new(CheckerGauges::new(WRITERS)),
        explore: Arc::new(ExploreGauges::new(WRITERS)),
        certifier: Arc::new(ProgressCertifier::new(WRITERS, u64::MAX)),
        progress: Arc::new(ProgressGauge::new(WRITERS, WRITERS as u64 * OPS_PER_WRITER)),
        peak: Arc::new(Watermark::new(WRITERS)),
        best: Arc::new(LowWatermark::new(WRITERS)),
        hist: Arc::new(Histogram::new(WRITERS, &[10, 100, 1_000])),
        latency: Arc::new(LatencyTracker::new(WRITERS, &[50, 500])),
        sharded: Arc::new(ShardedCounter::new(WRITERS)),
    };
    let mut reg = MetricsRegistry::new();
    fam.health.register_telemetry(&mut reg, "health_");
    fam.checker.register_telemetry(&mut reg, "checker_");
    fam.explore.register_telemetry(&mut reg, "explore_");
    fam.certifier.register_telemetry(&mut reg, "cert_");
    fam.progress.register_telemetry(&mut reg, "work_");
    fam.peak
        .register_into(&mut reg, "peak", "ns", "stress peak value");
    fam.best
        .register_into(&mut reg, "best", "ns", "stress best value");
    fam.hist
        .register_telemetry(&mut reg, "lat", "samples", "stress latency");
    fam.latency.register_telemetry(&mut reg, "rt_", "samples");
    ShardGauges::new(Arc::clone(&fam.sharded)).register_telemetry(&mut reg, "shard_");
    (fam, Arc::new(reg))
}

fn writer(fam: &Families, t: usize, rng: &mut SplitMix64) {
    let pid = ProcessId(t);
    for i in 0..OPS_PER_WRITER {
        let v = 1 + rng.gen_below(5_000);
        match i % 6 {
            0 => {
                fam.health.bump(pid, HealthEvent::Served);
                fam.health.record_queue_depth(pid, v % 64);
            }
            1 => fam.checker.record(pid, v as usize, v.is_multiple_of(7)),
            2 => fam.explore.record(
                pid,
                &ExploreStats {
                    schedules: 1,
                    pruned_branches: (v % 3) as usize,
                    executed_steps: v % 100,
                    replay_steps_saved: v % 50,
                    peak_depth: (v % 20) as usize,
                    crash_branches: 0,
                    reads: 0,
                    writes: 0,
                    cas_ok: 0,
                    cas_fail: 0,
                },
            ),
            3 => fam.certifier.record_completion(pid, v % 200),
            4 => {
                fam.peak.record(pid, v);
                fam.best.record(pid, v);
                fam.hist.record(pid, v % 2_000);
            }
            _ => {
                fam.latency.observe(pid, v % 1_000);
                fam.sharded.increment(pid);
            }
        }
        fam.progress.complete(pid);
    }
}

/// Checks `next` against `prev` scalar by scalar, honoring each
/// descriptor's declared monotonicity. Gauges (`shard_stripes`,
/// `cert_bound`, `work_total`) are constants here, so equality also
/// holds for them — but only the kind contract is asserted.
fn assert_monotone(prev: &TelemetrySnapshot, next: &TelemetrySnapshot) {
    assert_eq!(prev.entries().len(), next.entries().len());
    for (p, n) in prev.entries().iter().zip(next.entries()) {
        assert_eq!(p.desc, n.desc, "snapshot entry order changed");
        if p.desc.kind.monotone_up() {
            assert!(
                n.value >= p.value,
                "{} regressed: {} -> {}",
                p.desc.name,
                p.value,
                n.value
            );
        } else if p.desc.kind.monotone_down() {
            assert!(
                n.value <= p.value,
                "{} rose: {} -> {}",
                p.desc.name,
                p.value,
                n.value
            );
        }
    }
}

#[test]
fn snapshots_never_observe_regressions_under_8_threads() {
    let (fam, reg) = build();
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let reader = {
            let stop = Arc::clone(&stop);
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                let mut prev = reg.snapshot();
                let mut rounds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let next = reg.snapshot();
                    assert_monotone(&prev, &next);
                    prev = next;
                    rounds += 1;
                }
                rounds
            })
        };
        let mut writers = Vec::new();
        for t in 0..WRITERS {
            let famref = &fam;
            let mut rng = SplitMix64::new(0xD00D ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            writers.push(s.spawn(move || writer(famref, t, &mut rng)));
        }
        for w in writers {
            w.join().expect("writer thread panicked");
        }
        stop.store(true, Ordering::Relaxed);
        let rounds = reader.join().expect("reader thread panicked");
        assert!(rounds > 0, "reader never raced a snapshot");
    });
    // One final full check after quiescence: totals add up exactly.
    let snap = reg.snapshot();
    assert_eq!(snap.get("work_done"), Some(WRITERS as u64 * OPS_PER_WRITER));
    let text = snap.to_text();
    assert_eq!(TelemetrySnapshot::parse(&text).unwrap(), snap);
}

/// The same stress through a sampler: the sampled curves themselves
/// must be monotone point-to-point for monotone kinds.
#[test]
fn sampled_curves_are_monotone_under_8_threads() {
    let (fam, reg) = build();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..WRITERS {
            let famref = &fam;
            let mut rng = SplitMix64::new(0xFADE ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            handles.push(s.spawn(move || writer(famref, t, &mut rng)));
        }
        let mut sampler = SeriesSampler::new(Arc::clone(&reg), 512);
        let mut tick = 0u64;
        while handles.iter().any(|h| !h.is_finished()) {
            sampler.sample(tick);
            tick += 1;
        }
        sampler.sample(tick);
        for (name, curve) in sampler.curves() {
            let desc = &reg
                .snapshot()
                .entries()
                .iter()
                .find(|e| e.desc.name == name)
                .expect("curve names a registered scalar")
                .desc
                .clone();
            if desc.kind.monotone_up() {
                assert!(
                    curve.windows(2).all(|w| w[0].1 <= w[1].1),
                    "{name} curve regressed"
                );
            }
            if desc.kind.monotone_down() {
                assert!(
                    curve.windows(2).all(|w| w[0].1 >= w[1].1),
                    "{name} curve rose"
                );
            }
        }
    });
}
