//! Property tests for the metrics toolkit: every metric must agree with
//! a naive sequential oracle on arbitrary recording streams.
//!
//! The workspace builds offline with no external dependencies, so these
//! are deterministic randomized property tests driven by the local
//! [`ruo_sim::SplitMix64`] generator rather than `proptest`: each test
//! runs a fixed number of seeded cases, and a failure message always
//! includes the case number so the exact input can be regenerated.

use std::collections::BTreeSet;

use ruo_metrics::{Histogram, LowWatermark, ProgressGauge, Watermark};
use ruo_sim::{ProcessId, SplitMix64};

/// Watermark == max of all recorded values.
#[test]
fn watermark_matches_max_oracle() {
    let mut rng = SplitMix64::new(0x3a7e5);
    for case in 0..128 {
        let w = Watermark::new(4);
        let mut oracle = 0u64;
        for _ in 0..rng.gen_index(60) {
            let p = rng.gen_index(4);
            let v = rng.gen_below(1_000_000);
            w.record(ProcessId(p), v);
            oracle = oracle.max(v);
            assert_eq!(w.get(), oracle, "case {case}");
        }
    }
}

/// LowWatermark == min of all recorded values (None when empty).
#[test]
fn low_watermark_matches_min_oracle() {
    let mut rng = SplitMix64::new(0x10_3a7e5);
    for case in 0..128 {
        let w = LowWatermark::new(4);
        let mut oracle: Option<u64> = None;
        for _ in 0..rng.gen_index(60) {
            let p = rng.gen_index(4);
            let v = rng.gen_below(1_000_000);
            w.record(ProcessId(p), v);
            oracle = Some(oracle.map_or(v, |o| o.min(v)));
            assert_eq!(w.get(), oracle, "case {case}");
        }
    }
}

/// Histogram bucket counts match a naive per-value classification,
/// and quantile upper bounds match a sorted-oracle quantile's bucket.
#[test]
fn histogram_matches_bucket_oracle() {
    let mut rng = SplitMix64::new(0x815709);
    for case in 0..128 {
        let n_bounds = 1 + rng.gen_index(5);
        let mut boundaries = BTreeSet::new();
        while boundaries.len() < n_bounds {
            boundaries.insert(1 + rng.gen_below(499));
        }
        let bounds: Vec<u64> = boundaries.into_iter().collect();
        let n_values = 1 + rng.gen_index(79);
        let values: Vec<u64> = (0..n_values).map(|_| rng.gen_below(600)).collect();

        let h = Histogram::new(2, &bounds);
        let mut oracle = vec![0u64; bounds.len() + 1];
        for &v in &values {
            h.record(ProcessId(0), v);
            let idx = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
            oracle[idx] += 1;
        }
        let snap = h.snapshot();
        assert_eq!(snap.bucket_counts(), &oracle[..], "case {case}");
        assert_eq!(snap.total(), values.len() as u64, "case {case}");

        // Quantile oracle: the bucket bound of the ceil(q·total)-th
        // smallest value. The rank-th smallest value lies in bucket j
        // exactly when the cumulative count first reaches the rank at j,
        // so the histogram's answer must match this oracle EXACTLY.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.25f64, 0.5, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let val = sorted[rank - 1];
            let expected = bounds.iter().find(|&&b| val <= b).copied();
            assert_eq!(
                snap.quantile_upper_bound(q),
                expected,
                "case {case}: q={q} rank={rank} value={val}"
            );
        }
    }
}

/// ProgressGauge: done/remaining/fraction are consistent with the
/// number of completions.
#[test]
fn gauge_matches_completion_oracle() {
    let mut rng = SplitMix64::new(0x9a09e);
    for case in 0..128 {
        let completions = rng.gen_below(50);
        let total = 50 + rng.gen_below(150);
        let g = ProgressGauge::new(2, total);
        for i in 0..completions {
            g.complete(ProcessId((i % 2) as usize));
        }
        assert_eq!(g.done(), completions, "case {case}");
        assert_eq!(g.remaining(), total - completions, "case {case}");
        assert_eq!(g.total(), total, "case {case}");
        let f = g.fraction();
        assert!(
            (f - completions as f64 / total as f64).abs() < 1e-12,
            "case {case}"
        );
        assert_eq!(g.is_complete(), completions >= total, "case {case}");
    }
}
