//! Property tests for the metrics toolkit: every metric must agree with
//! a naive sequential oracle on arbitrary recording streams.

use proptest::prelude::*;
use ruo_metrics::{Histogram, LowWatermark, ProgressGauge, Watermark};
use ruo_sim::ProcessId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Watermark == max of all recorded values.
    #[test]
    fn watermark_matches_max_oracle(
        records in proptest::collection::vec((0usize..4, 0u64..1_000_000), 0..60)
    ) {
        let w = Watermark::new(4);
        let mut oracle = 0u64;
        for (p, v) in records {
            w.record(ProcessId(p), v);
            oracle = oracle.max(v);
            prop_assert_eq!(w.get(), oracle);
        }
    }

    /// LowWatermark == min of all recorded values (None when empty).
    #[test]
    fn low_watermark_matches_min_oracle(
        records in proptest::collection::vec((0usize..4, 0u64..1_000_000), 0..60)
    ) {
        let w = LowWatermark::new(4);
        let mut oracle: Option<u64> = None;
        for (p, v) in records {
            w.record(ProcessId(p), v);
            oracle = Some(oracle.map_or(v, |o| o.min(v)));
            prop_assert_eq!(w.get(), oracle);
        }
    }

    /// Histogram bucket counts match a naive per-value classification,
    /// and quantile upper bounds match a sorted-oracle quantile's bucket.
    #[test]
    fn histogram_matches_bucket_oracle(
        boundaries in proptest::collection::btree_set(1u64..500, 1..6),
        values in proptest::collection::vec(0u64..600, 1..80),
    ) {
        let bounds: Vec<u64> = boundaries.into_iter().collect();
        let h = Histogram::new(2, &bounds);
        let mut oracle = vec![0u64; bounds.len() + 1];
        for &v in &values {
            h.record(ProcessId(0), v);
            let idx = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
            oracle[idx] += 1;
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.bucket_counts(), &oracle[..]);
        prop_assert_eq!(snap.total(), values.len() as u64);

        // Quantile oracle: the bucket bound of the ceil(q·total)-th
        // smallest value. The rank-th smallest value lies in bucket j
        // exactly when the cumulative count first reaches the rank at j,
        // so the histogram's answer must match this oracle EXACTLY.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.25f64, 0.5, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let val = sorted[rank - 1];
            let expected = bounds.iter().find(|&&b| val <= b).copied();
            prop_assert_eq!(
                snap.quantile_upper_bound(q),
                expected,
                "q={} rank={} value={}",
                q,
                rank,
                val
            );
        }
    }

    /// ProgressGauge: done/remaining/fraction are consistent with the
    /// number of completions.
    #[test]
    fn gauge_matches_completion_oracle(
        completions in 0u64..50,
        total in 50u64..200,
    ) {
        let g = ProgressGauge::new(2, total);
        for i in 0..completions {
            g.complete(ProcessId((i % 2) as usize));
        }
        prop_assert_eq!(g.done(), completions);
        prop_assert_eq!(g.remaining(), total - completions);
        prop_assert_eq!(g.total(), total);
        let f = g.fraction();
        prop_assert!((f - completions as f64 / total as f64).abs() < 1e-12);
        prop_assert_eq!(g.is_complete(), completions >= total);
    }
}
