//! Wire-codec fuzzing, mirroring the scenario codec's
//! `json_roundtrip.rs`: a SplitMix64 stream generates thousands of
//! random requests and responses, each of which must survive
//! `parse(encode(x)) == x`; then the same stream mutates, truncates and
//! splices valid lines — everything the chaos layer's truncated frames
//! can produce — and `parse` must return an error or a value, never
//! panic.

use ruo_serve::proto::{ErrCode, Request, Response};
use ruo_sim::SplitMix64;

const IDENT_CHARS: &[u8] = b"abcXYZ019_.:-";

fn random_ident(rng: &mut SplitMix64) -> String {
    let len = 1 + rng.gen_index(16);
    (0..len)
        .map(|_| IDENT_CHARS[rng.gen_index(IDENT_CHARS.len())] as char)
        .collect()
}

fn random_value(rng: &mut SplitMix64) -> u64 {
    match rng.gen_index(4) {
        0 => rng.gen_below(10),
        1 => rng.next_u64(),
        2 => u64::MAX,
        _ => rng.gen_below(1 << 40),
    }
}

fn random_request(rng: &mut SplitMix64) -> Request {
    match rng.gen_index(7) {
        0 => Request::Incr {
            obj: random_ident(rng),
            k: 1 + rng.gen_below(4096),
            token: None,
        },
        1 => Request::Incr {
            obj: random_ident(rng),
            k: 1 + rng.gen_below(4096),
            token: Some(random_ident(rng)),
        },
        2 => Request::WriteMax {
            obj: random_ident(rng),
            v: random_value(rng),
        },
        3 => Request::Update {
            obj: random_ident(rng),
            v: random_value(rng),
        },
        4 => Request::Read {
            obj: random_ident(rng),
        },
        5 => Request::Scan {
            obj: random_ident(rng),
        },
        _ => {
            if rng.gen_bool(0.5) {
                Request::Metrics
            } else {
                Request::Ping
            }
        }
    }
}

/// Random metrics dumps: the wire format demands strictly ascending
/// unique keys (the registry snapshot guarantees them), so sort + dedup.
fn random_metrics(rng: &mut SplitMix64) -> Response {
    let n = rng.gen_index(7);
    let mut keys: Vec<String> = (0..n).map(|_| random_ident(rng)).collect();
    keys.sort();
    keys.dedup();
    Response::Metrics(keys.into_iter().map(|k| (k, random_value(rng))).collect())
}

fn random_response(rng: &mut SplitMix64) -> Response {
    match rng.gen_index(6) {
        0 => Response::Ok,
        1 => Response::Pong,
        2 => Response::Value {
            v: random_value(rng),
            degraded: rng.gen_bool(0.5),
        },
        3 => {
            let n = 2 + rng.gen_index(8);
            Response::Vector {
                vs: (0..n).map(|_| random_value(rng)).collect(),
                degraded: rng.gen_bool(0.5),
            }
        }
        4 => random_metrics(rng),
        _ => {
            let code = match rng.gen_index(6) {
                0 => ErrCode::Overload,
                1 => ErrCode::Deadline,
                2 => ErrCode::Closed,
                3 => ErrCode::NoObject,
                4 => ErrCode::Parse,
                _ => ErrCode::Unsupported,
            };
            let detail = if rng.gen_bool(0.5) {
                String::new()
            } else {
                // Details may contain spaces (but not newlines).
                format!("{} {}", random_ident(rng), random_ident(rng))
            };
            Response::Err { code, detail }
        }
    }
}

#[test]
fn requests_round_trip_exactly() {
    let mut rng = SplitMix64::new(0x5EED_0001);
    for i in 0..4000 {
        let req = random_request(&mut rng);
        let line = req.encode();
        let back = Request::parse(&line)
            .unwrap_or_else(|e| panic!("case {i}: rejected own encoding {line:?}: {e}"));
        assert_eq!(back, req, "case {i}: {line:?}");
        // Second hop is textually identical (canonical encoding).
        assert_eq!(back.encode(), line, "case {i}");
    }
}

#[test]
fn responses_round_trip_exactly() {
    let mut rng = SplitMix64::new(0x5EED_0002);
    for i in 0..4000 {
        let resp = random_response(&mut rng);
        let line = resp.encode();
        let back = Response::parse(&line)
            .unwrap_or_else(|e| panic!("case {i}: rejected own encoding {line:?}: {e}"));
        assert_eq!(back, resp, "case {i}: {line:?}");
        assert_eq!(back.encode(), line, "case {i}");
    }
}

/// Truncated frames: every strict prefix of a valid line must parse to
/// an error or to some *other* valid value — never panic. This is
/// exactly what `NetFault::TruncateWrite` feeds the peer.
#[test]
fn truncated_frames_never_panic() {
    let mut rng = SplitMix64::new(0x5EED_0003);
    for _ in 0..400 {
        let req_line = random_request(&mut rng).encode();
        for cut in 0..req_line.len() {
            let _ = Request::parse(&req_line[..cut]);
            let _ = Response::parse(&req_line[..cut]);
        }
        let resp_line = random_response(&mut rng).encode();
        for cut in 0..resp_line.len() {
            let _ = Response::parse(&resp_line[..cut]);
            let _ = Request::parse(&resp_line[..cut]);
        }
    }
}

/// Random byte mutations of valid lines (bit flips, splices, doubled
/// separators, glued frames): `parse` must stay total.
#[test]
fn mutated_lines_never_panic() {
    let mut rng = SplitMix64::new(0x5EED_0004);
    for _ in 0..4000 {
        let mut bytes = if rng.gen_bool(0.5) {
            random_request(&mut rng).encode().into_bytes()
        } else {
            random_response(&mut rng).encode().into_bytes()
        };
        match rng.gen_index(4) {
            0 => {
                // Flip a byte.
                if !bytes.is_empty() {
                    let i = rng.gen_index(bytes.len());
                    bytes[i] ^= 1 << rng.gen_index(8);
                }
            }
            1 => {
                // Glue two frames (a lost newline).
                let other = random_request(&mut rng).encode().into_bytes();
                bytes.extend_from_slice(&other);
            }
            2 => {
                // Insert a separator.
                let i = rng.gen_index(bytes.len() + 1);
                bytes.insert(i, *[b' ', b',', b'=', b'\t'].get(rng.gen_index(4)).unwrap());
            }
            _ => {
                // Pure noise.
                bytes = (0..rng.gen_index(40))
                    .map(|_| rng.gen_below(256) as u8)
                    .collect();
            }
        }
        if let Ok(s) = String::from_utf8(bytes) {
            let _ = Request::parse(&s);
            let _ = Response::parse(&s);
        }
    }
}

/// Whatever garbage parses as a request must re-encode to something
/// that parses back to the same request — the parser accepts only
/// canonical lines.
#[test]
fn accepted_garbage_is_canonical() {
    let mut rng = SplitMix64::new(0x5EED_0005);
    let mut accepted = 0;
    for _ in 0..8000 {
        let mut bytes = random_request(&mut rng).encode().into_bytes();
        if !bytes.is_empty() {
            let i = rng.gen_index(bytes.len());
            bytes[i] = IDENT_CHARS[rng.gen_index(IDENT_CHARS.len())];
        }
        let Ok(s) = String::from_utf8(bytes) else {
            continue;
        };
        if let Ok(req) = Request::parse(&s) {
            accepted += 1;
            assert_eq!(Request::parse(&req.encode()).unwrap(), req);
            assert_eq!(req.encode(), s, "non-canonical accept: {s:?}");
        }
    }
    assert!(accepted > 100, "mutator too destructive: {accepted}");
}

/// Metrics-specific adversaries: for random valid metrics lines, every
/// systematic corruption of the schema tag or the key order must be
/// rejected (and never panic) — order violations, duplicate keys,
/// untagged dumps, degraded tags, and tag typos.
#[test]
fn metrics_corruptions_are_rejected() {
    let mut rng = SplitMix64::new(0x5EED_0006);
    let tag = ruo_metrics::TELEM_SCHEMA;
    let mut multi_key = 0;
    for _ in 0..2000 {
        let Response::Metrics(pairs) = random_metrics(&mut rng) else {
            unreachable!()
        };
        let line = Response::Metrics(pairs.clone()).encode();
        // Sanity: the valid line round-trips.
        assert_eq!(
            Response::parse(&line).unwrap(),
            Response::Metrics(pairs.clone())
        );
        // Untagged: drop the schema tag but keep the pairs.
        if !pairs.is_empty() {
            let untagged = format!("ok {}", &line[4 + tag.len()..]);
            assert!(Response::parse(&untagged).is_err(), "accepted {untagged:?}");
        }
        // Degraded metrics are contradictory.
        let degraded = format!("ok degraded {}", &line[3..]);
        assert!(Response::parse(&degraded).is_err(), "accepted {degraded:?}");
        // Tag typo: bump the version digit.
        let typo = line.replace(tag, "ruo-telem-v2");
        assert!(Response::parse(&typo).is_err(), "accepted {typo:?}");
        if pairs.len() >= 2 {
            multi_key += 1;
            // Reversed keys violate the ascending-order contract.
            let mut rev = pairs.clone();
            rev.reverse();
            let rev_line = Response::Metrics(rev).encode();
            assert!(Response::parse(&rev_line).is_err(), "accepted {rev_line:?}");
            // A duplicated key violates uniqueness.
            let mut dup = pairs.clone();
            let d = dup[0].clone();
            dup.insert(1, d);
            let dup_line = Response::Metrics(dup).encode();
            assert!(Response::parse(&dup_line).is_err(), "accepted {dup_line:?}");
        }
    }
    assert!(multi_key > 200, "generator too thin: {multi_key}");
}

/// Oversized lines are rejected, not buffered or panicked on.
#[test]
fn oversized_lines_are_rejected() {
    let big = format!("read {}", "a".repeat(ruo_serve::MAX_LINE_BYTES + 10));
    assert!(Request::parse(&big).is_err());
    let big = format!("ok {}", "1".repeat(ruo_serve::MAX_LINE_BYTES + 10));
    assert!(Response::parse(&big).is_err());
}
