//! Retry semantics under chaos: every replayed `incr` must apply
//! exactly once.
//!
//! Two attack angles:
//!
//! * a *fixed* server-side fault plan that truncates every connection's
//!   second response — the ack is lost after the increment applied, the
//!   client must retry, and the dedup window must absorb the replay;
//! * a seeded sweep of the stock client-side chaos profile (drops,
//!   half-closes, truncated requests, stalls), after which the test
//!   replays **every** token raw — applied-and-acked, applied-unacked
//!   and never-applied alike — so the final count equals the number of
//!   distinct tokens iff each applied exactly once.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use ruo_serve::{Client, ClientConfig, NetFault, NetFaultPlan, ObjectDef, ServeConfig, Server};

fn server_with(chaos: Option<NetFaultPlan>) -> Server {
    Server::start(
        ServeConfig {
            workers: 2,
            chaos,
            ..ServeConfig::default()
        },
        &[ObjectDef::counter("hits", "farray")],
    )
    .unwrap()
}

#[test]
fn lost_acks_dedup_exactly_once() {
    // Every connection's second write (= second response) is truncated
    // to one byte: the increment applies, the ack never arrives intact,
    // the client must reconnect and replay the same token.
    let plan = NetFaultPlan::new().with(NetFault::TruncateWrite {
        at_write: 2,
        keep_bytes: 1,
    });
    let server = server_with(Some(plan));
    let mut client = Client::new(ClientConfig::new(server.addr()), 1);
    let total = 10;
    let mut acked = 0;
    for _ in 0..total {
        if client.incr("hits", 1).is_ok() {
            acked += 1;
        }
    }
    let stats = client.stats();
    let summary = server.shutdown();
    let applied = summary.final_value("hits").unwrap();
    assert!(stats.retries > 0, "the fault plan never forced a retry");
    assert!(
        summary.health.dedup_hits > 0,
        "no replay ever hit the dedup window"
    );
    assert!(applied >= acked, "acked {acked} > applied {applied}");
    assert!(
        applied <= total,
        "double-applied replays: {applied} > {total} issued"
    );
    assert!(summary.audit().ok(), "{}", summary.audit());
}

/// Replays `incr <obj> 1 <token>` over a clean raw socket, panicking
/// unless the server acks.
fn replay_token(addr: std::net::SocketAddr, token: &str) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream
        .write_all(format!("incr hits 1 {token}\n").as_bytes())
        .unwrap();
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => panic!("server closed during replay of {token}"),
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(e) => panic!("replay read failed: {e}"),
        }
    }
    assert_eq!(line.trim_end(), "ok", "replay of {token} failed: {line}");
}

#[test]
fn chaos_sweep_applies_every_token_exactly_once() {
    let mut total_retries = 0;
    let mut total_injected = 0;
    for seed in [11u64, 42, 1337] {
        let server = server_with(None);
        let addr = server.addr();
        let per_client = 20u64;
        let client_ids = [seed * 100 + 1, seed * 100 + 2];
        let mut handles = Vec::new();
        for &id in &client_ids {
            let chaos = NetFaultPlan::chaos(seed);
            handles.push(std::thread::spawn(move || {
                let mut cfg = ClientConfig::new(addr);
                cfg.chaos = Some(chaos);
                cfg.max_attempts = 10;
                let mut client = Client::new(cfg, id);
                let mut exhausted = 0;
                for _ in 0..per_client {
                    if client.incr("hits", 1).is_err() {
                        exhausted += 1;
                    }
                }
                (client.stats(), exhausted)
            }));
        }
        let mut acked = 0;
        for h in handles {
            let (stats, _exhausted) = h.join().unwrap();
            acked += stats.acked_incrs;
            total_retries += stats.retries;
        }
        // Replay every token the clients could have issued — the
        // client's token format is `c<id>:<seq>` with seq 1..=requests.
        for &id in &client_ids {
            for seq in 1..=per_client {
                replay_token(addr, &format!("c{id}:{seq}"));
            }
        }
        let summary = server.shutdown();
        let applied = summary.final_value("hits").unwrap();
        let issued = per_client * client_ids.len() as u64;
        assert_eq!(
            applied, issued,
            "seed {seed}: {issued} distinct tokens but {applied} applied — \
             some replay double-counted or some token vanished"
        );
        assert!(acked <= applied, "seed {seed}: acked {acked} > applied");
        assert!(summary.audit().ok(), "seed {seed}: {}", summary.audit());
        total_injected += summary.health.chaos_injected;
        let _ = total_injected; // server-side plan is clean in this sweep
    }
    assert!(
        total_retries > 0,
        "three chaos seeds never forced a single retry — the plan is inert"
    );
}

#[test]
fn retryable_refusals_eventually_succeed() {
    // A half-closed server response socket forces the client through
    // its full reconnect + backoff loop; the request itself must still
    // land exactly once.
    let plan = NetFaultPlan::new().with(NetFault::HalfClose { at_write: 1 });
    let server = server_with(Some(plan));
    let mut client = Client::new(ClientConfig::new(server.addr()), 9);
    // First response per connection arrives, later ones are cut: every
    // request needs a fresh connection after the first.
    for _ in 0..6 {
        client.incr("hits", 1).unwrap();
    }
    let stats = client.stats();
    let summary = server.shutdown();
    assert_eq!(summary.final_value("hits"), Some(6));
    assert!(stats.reconnects > 0);
    assert!(summary.audit().ok());
}
