//! The server: a worker pool serving registry objects over TCP.
//!
//! ## Architecture
//!
//! One acceptor thread polls a non-blocking listener and runs the
//! admission gate; `workers` worker threads pop admitted connections
//! from a bounded queue and serve them to completion. Worker `w` is
//! process identity `ProcessId(w)` on every object — one pid per
//! thread, exactly the single-writer discipline the paper's objects
//! require. All sockets carry read/write timeouts, so a stalled or
//! half-closed peer (chaos does both) can hold a worker for at most one
//! timeout, never forever.
//!
//! ## Degradation ladder
//!
//! 1. **Healthy** — every op is applied to the exact object and logged
//!    (invoke/response ticks from one global atomic) for the post-run
//!    linearizability audit.
//! 2. **Degraded** (queue depth ≥ `degrade_depth`) — counter reads are
//!    answered by a real k-multiplicative-accurate object
//!    ([`ApproxCounter`], mirroring every applied increment) and
//!    snapshot scans by the last exact scan, both flagged `degraded`;
//!    updates and max-register reads (already `O(1)`) stay exact. The
//!    shutdown audit holds every degraded counter answer to the
//!    configured k-envelope — the cheap tier has a *checked* contract,
//!    not a best-effort one.
//! 3. **Shedding** (queue full) — new connections get `err overload`
//!    and are closed at the gate.
//! 4. **Draining** — no new connections or requests (`err closed`);
//!    every in-flight request completes, is logged, *then* acked, so an
//!    acknowledged op can never be lost by shutdown.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ruo_core::counter::ApproxCounter;
use ruo_core::Counter as _;
use ruo_metrics::{HealthEvent, HealthGauges, HealthSnapshot, MetricsRegistry};
use ruo_scenario::registry::{find, BuildError, BuildParams, Family, RealObject};
use ruo_sim::{OpDesc, OpOutput, ProcessId, Word};

use crate::audit::{audit, AuditReport, DegradedRead, LoggedOp, ObjectLog};
use crate::chaos::{ChaosStream, NetFaultPlan};
use crate::proto::{ErrCode, Request, Response, MAX_LINE_BYTES};
use crate::span::{spans_to_chrome_trace, spans_to_jsonl, RequestSpan, SpanRung};

/// One object to serve, by registry coordinates.
#[derive(Debug, Clone)]
pub struct ObjectDef {
    /// Wire name clients address it by.
    pub name: String,
    /// Registry family.
    pub family: Family,
    /// Registry implementation id (`"farray"`, `"tree"`, …).
    pub impl_id: String,
    /// Capacity for bounded implementations.
    pub capacity: u64,
}

impl ObjectDef {
    /// A counter object.
    pub fn counter(name: &str, impl_id: &str) -> Self {
        ObjectDef {
            name: name.into(),
            family: Family::Counter,
            impl_id: impl_id.into(),
            capacity: 1 << 20,
        }
    }

    /// A max-register object.
    pub fn maxreg(name: &str, impl_id: &str) -> Self {
        ObjectDef {
            name: name.into(),
            family: Family::MaxReg,
            impl_id: impl_id.into(),
            capacity: 1 << 20,
        }
    }

    /// A snapshot object.
    pub fn snapshot(name: &str, impl_id: &str) -> Self {
        ObjectDef {
            name: name.into(),
            family: Family::Snapshot,
            impl_id: impl_id.into(),
            capacity: 1 << 20,
        }
    }
}

/// Server tuning knobs. [`ServeConfig::default`] is sized for tests and
/// the swarm smoke; production would scale `workers` with cores.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (= process identities on every object).
    pub workers: usize,
    /// Admitted-connection queue bound; the gate sheds above it.
    pub queue_cap: usize,
    /// Queue depth at which reads drop to the degraded tier.
    pub degrade_depth: usize,
    /// Longest a connection may wait in the queue before its first
    /// request is answered `err deadline`.
    pub deadline: Duration,
    /// Idempotency-token window size (tokens remembered).
    pub dedup_window: usize,
    /// Per-socket read/write timeout.
    pub io_timeout: Duration,
    /// Consecutive read timeouts before an idle connection is closed.
    pub idle_polls: u32,
    /// Server-side chaos plan wrapped around every accepted socket.
    pub chaos: Option<NetFaultPlan>,
    /// Accuracy factor `k` (`≥ 1`) of the degraded counter tier: a
    /// degraded read `v` against the true applied count `C` guarantees
    /// `C / k ≤ v ≤ C`. `1` makes the degraded tier exact (every
    /// increment publishes); the shutdown audit enforces whatever is
    /// configured here.
    pub accuracy_k: u64,
    /// Record a [`RequestSpan`] per served request (returned in
    /// [`ServeSummary::spans`]). Off by default: the hot path then pays
    /// nothing beyond the tick stamps it already takes for the audit
    /// log.
    pub spans: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_cap: 64,
            degrade_depth: 8,
            deadline: Duration::from_millis(250),
            dedup_window: 4096,
            io_timeout: Duration::from_millis(50),
            idle_polls: 40,
            chaos: None,
            accuracy_k: 4,
            spans: false,
        }
    }
}

/// Why the server failed to start.
#[derive(Debug)]
pub enum StartError {
    /// Socket setup failed.
    Io(io::Error),
    /// An [`ObjectDef`] named an unknown or real-faceless registry
    /// implementation.
    Build(BuildError),
    /// Config rejected (zero workers, duplicate object name, …).
    Config(String),
}

impl fmt::Display for StartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StartError::Io(e) => write!(f, "serve start: {e}"),
            StartError::Build(e) => write!(f, "serve start: {e}"),
            StartError::Config(m) => write!(f, "serve start: {m}"),
        }
    }
}

impl std::error::Error for StartError {}

impl From<io::Error> for StartError {
    fn from(e: io::Error) -> Self {
        StartError::Io(e)
    }
}

/// The cheap overload tier backing degraded answers.
enum Shadow {
    /// The HKM k-accurate counter mirroring every applied increment: a
    /// degraded read is one published-stripe sweep, no propagation-tree
    /// traffic, and the answer carries a checkable `C/k ≤ v ≤ C`
    /// contract (audited at shutdown).
    Counter(ApproxCounter),
    /// Max registers never degrade (`read_max` is already one load).
    None,
    /// Last exact scan; a degraded scan replays it.
    Scan(Mutex<Vec<u64>>),
}

struct ServedObject {
    name: String,
    family: Family,
    n: usize,
    accuracy_k: u64,
    obj: RealObject,
    shadow: Shadow,
    log: Mutex<Vec<LoggedOp>>,
    degraded: Mutex<Vec<DegradedRead>>,
}

impl ServedObject {
    fn into_log(self) -> ObjectLog {
        ObjectLog {
            name: self.name,
            family: self.family,
            n: self.n,
            ops: self.log.into_inner().unwrap(),
            degraded: self.degraded.into_inner().unwrap(),
            accuracy_k: self.accuracy_k,
        }
    }
}

struct PendingConn {
    stream: ChaosStream<TcpStream>,
    enqueued: Instant,
    conn_id: u64,
    accept_tick: u64,
    enqueue_tick: u64,
}

/// Bounded FIFO idempotency window: remembers the last
/// `cap` tokens. A token is *reserved* before its increment is applied,
/// so two concurrent replays can never both apply.
struct DedupWindow {
    seen: HashMap<String, ()>,
    order: VecDeque<String>,
    cap: usize,
}

impl DedupWindow {
    fn new(cap: usize) -> Self {
        DedupWindow {
            seen: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// True if the token was already present; reserves it otherwise.
    fn check_and_reserve(&mut self, token: &str) -> bool {
        if self.seen.contains_key(token) {
            return true;
        }
        if self.order.len() == self.cap {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.seen.insert(token.to_string(), ());
        self.order.push_back(token.to_string());
        false
    }
}

struct Inner {
    cfg: ServeConfig,
    objects: Vec<ServedObject>,
    queue: Mutex<VecDeque<PendingConn>>,
    queue_cv: Condvar,
    queue_depth: AtomicUsize,
    inflight: AtomicU64,
    draining: AtomicBool,
    tick: AtomicU64,
    conn_ids: AtomicU64,
    dedup: Mutex<DedupWindow>,
    gauges: Arc<HealthGauges>,
    /// Self-describing telemetry over the health gauges; the `metrics`
    /// verb answers with a snapshot of this (see [`crate::proto`]).
    registry: MetricsRegistry,
    /// Request spans, recorded only when [`ServeConfig::spans`] is on.
    spans: Mutex<Vec<RequestSpan>>,
}

impl Inner {
    fn object(&self, name: &str) -> Option<&ServedObject> {
        self.objects.iter().find(|o| o.name == name)
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::SeqCst)
    }
}

/// Everything the server knows at shutdown.
#[derive(Debug)]
pub struct ServeSummary {
    /// Per-object op logs, ready for [`audit`].
    pub logs: Vec<ObjectLog>,
    /// Final health-gauge totals.
    pub health: HealthSnapshot,
    /// Final exact value of every counter and max register (counters
    /// report their count; used by drain checks: applied must be ≥
    /// acked).
    pub final_values: Vec<(String, u64)>,
    /// Request-lifecycle spans, in recording order (empty unless
    /// [`ServeConfig::spans`] was on).
    pub spans: Vec<RequestSpan>,
}

impl ServeSummary {
    /// Replays every object's log through the interval checker.
    pub fn audit(&self) -> AuditReport {
        audit(&self.logs)
    }

    /// The final exact value of the named object, if it has one.
    pub fn final_value(&self, name: &str) -> Option<u64> {
        self.final_values
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The recorded spans as JSONL (schema `ruo-serve-span-v1`).
    pub fn spans_to_jsonl(&self) -> String {
        spans_to_jsonl(&self.spans)
    }

    /// The recorded spans as Chrome `trace_event` JSON.
    pub fn spans_to_chrome_trace(&self) -> String {
        spans_to_chrome_trace(&self.spans)
    }
}

/// A running server. Dropping it without [`Server::shutdown`] leaks the
/// threads; call `shutdown` to drain and collect the op logs.
pub struct Server {
    inner: Arc<Inner>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Server {
    /// Builds the objects and starts the acceptor + worker pool on
    /// `127.0.0.1` (ephemeral port — see [`Server::addr`]).
    pub fn start(cfg: ServeConfig, defs: &[ObjectDef]) -> Result<Server, StartError> {
        if cfg.workers == 0 {
            return Err(StartError::Config("workers must be >= 1".into()));
        }
        if defs.is_empty() {
            return Err(StartError::Config("no objects to serve".into()));
        }
        if cfg.accuracy_k == 0 {
            return Err(StartError::Config("accuracy_k must be >= 1".into()));
        }
        let mut objects = Vec::with_capacity(defs.len());
        for def in defs {
            if objects.iter().any(|o: &ServedObject| o.name == def.name) {
                return Err(StartError::Config(format!(
                    "duplicate object name {:?}",
                    def.name
                )));
            }
            let entry = find(def.family, &def.impl_id).map_err(StartError::Build)?;
            let obj = entry
                .build_real(&BuildParams {
                    n: cfg.workers,
                    capacity: def.capacity,
                    root_fast_path: false,
                    // The served object is the *exact* tier; only the
                    // shadow below relaxes.
                    accuracy_k: 1,
                })
                .map_err(StartError::Build)?;
            let shadow = match def.family {
                Family::Counter => Shadow::Counter(ApproxCounter::new(cfg.workers, cfg.accuracy_k)),
                Family::MaxReg => Shadow::None,
                Family::Snapshot => Shadow::Scan(Mutex::new(vec![0; cfg.workers])),
            };
            objects.push(ServedObject {
                name: def.name.clone(),
                family: def.family,
                n: cfg.workers,
                accuracy_k: cfg.accuracy_k,
                obj,
                shadow,
                log: Mutex::new(Vec::new()),
                degraded: Mutex::new(Vec::new()),
            });
        }

        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let n_workers = cfg.workers;
        let dedup_cap = cfg.dedup_window;
        // One gauge identity per worker plus the acceptor; the registry
        // reads each scalar with one root load.
        let gauges = Arc::new(HealthGauges::new(n_workers + 1));
        let mut registry = MetricsRegistry::new();
        gauges.register_telemetry(&mut registry, "");
        let inner = Arc::new(Inner {
            gauges,
            registry,
            spans: Mutex::new(Vec::new()),
            dedup: Mutex::new(DedupWindow::new(dedup_cap)),
            cfg,
            objects,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_depth: AtomicUsize::new(0),
            inflight: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            tick: AtomicU64::new(0),
            conn_ids: AtomicU64::new(0),
        });

        let acceptor = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&inner, listener))?
        };
        let mut workers = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let inner = Arc::clone(&inner);
            workers.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&inner, w))?,
            );
        }
        Ok(Server {
            inner,
            acceptor: Some(acceptor),
            workers,
            addr,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current health totals.
    pub fn health(&self) -> HealthSnapshot {
        self.inner.gauges.snapshot()
    }

    /// Drains and stops the server: the gate closes, queued connections
    /// are answered `err closed`, in-flight requests complete and are
    /// acked, threads join. Returns the op logs and final state.
    pub fn shutdown(mut self) -> ServeSummary {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let inner = Arc::try_unwrap(self.inner)
            .unwrap_or_else(|_| panic!("server threads still hold the state after join"));
        let health = inner.gauges.snapshot();
        let spans = inner.spans.into_inner().unwrap();
        let mut final_values = Vec::new();
        let mut logs = Vec::new();
        for o in inner.objects {
            match &o.obj {
                RealObject::Counter(c) => final_values.push((o.name.clone(), c.read())),
                RealObject::MaxReg(m) => final_values.push((o.name.clone(), m.read_max())),
                RealObject::Snapshot(_) => {}
            }
            logs.push(o.into_log());
        }
        ServeSummary {
            logs,
            health,
            final_values,
            spans,
        }
    }
}

fn accept_loop(inner: &Inner, listener: TcpListener) {
    let pid = ProcessId(inner.cfg.workers); // the acceptor's gauge identity
    loop {
        if inner.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = inner.conn_ids.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(inner.cfg.io_timeout));
                let _ = stream.set_write_timeout(Some(inner.cfg.io_timeout));
                let depth = inner.queue_depth.load(Ordering::Relaxed);
                inner.gauges.record_queue_depth(pid, depth as u64 + 1);
                if depth >= inner.cfg.queue_cap {
                    // Shed at the gate: one best-effort refusal line.
                    inner.gauges.bump(pid, HealthEvent::Shed);
                    let mut s = stream;
                    let _ = s.write_all(b"err overload\n");
                    continue;
                }
                inner.gauges.bump(pid, HealthEvent::Admitted);
                let accept_tick = inner.next_tick();
                let wrapped = match &inner.cfg.chaos {
                    Some(plan) => ChaosStream::new(stream, plan, conn_id),
                    None => ChaosStream::passthrough(stream),
                };
                let enqueue_tick = inner.next_tick();
                let mut q = inner.queue.lock().unwrap();
                q.push_back(PendingConn {
                    stream: wrapped,
                    enqueued: Instant::now(),
                    conn_id,
                    accept_tick,
                    enqueue_tick,
                });
                inner.queue_depth.store(q.len(), Ordering::Relaxed);
                drop(q);
                inner.queue_cv.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn worker_loop(inner: &Inner, w: usize) {
    let pid = ProcessId(w);
    loop {
        let conn = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if let Some(c) = q.pop_front() {
                    inner.queue_depth.store(q.len(), Ordering::Relaxed);
                    break c;
                }
                if inner.draining.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = inner
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(5))
                    .unwrap();
                q = guard;
            }
        };
        let draining = inner.draining.load(Ordering::SeqCst);
        let dequeue_tick = inner.next_tick();
        let ctx = ConnCtx {
            conn_id: conn.conn_id,
            accept_tick: conn.accept_tick,
            enqueue_tick: conn.enqueue_tick,
            dequeue_tick,
        };
        let mut stream = conn.stream;
        if draining {
            let _ = stream.write_all(b"err closed\n");
            continue;
        }
        if conn.enqueued.elapsed() > inner.cfg.deadline {
            // The connection aged out before any worker reached it.
            inner.gauges.bump(pid, HealthEvent::DeadlineMiss);
            let _ = stream.write_all(b"err deadline\n");
            continue;
        }
        serve_conn(inner, pid, &mut stream, &ctx);
        for _ in 0..stream.injected() {
            inner.gauges.bump(pid, HealthEvent::ChaosInjected);
        }
    }
}

/// Connection-level span context: the ticks stamped before the worker
/// started reading requests off the connection.
struct ConnCtx {
    conn_id: u64,
    accept_tick: u64,
    enqueue_tick: u64,
    dequeue_tick: u64,
}

/// Reads newline-framed lines off a raw stream, carrying partial frames
/// between reads. Returns `Ok(None)` on clean EOF.
struct LineReader {
    carry: Vec<u8>,
}

impl LineReader {
    fn new() -> Self {
        LineReader { carry: Vec::new() }
    }

    fn next_line<S: Read>(&mut self, s: &mut S) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.carry.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.carry.drain(..=pos).collect();
                line.pop(); // the newline
                return match String::from_utf8(line) {
                    Ok(l) => Ok(Some(l)),
                    Err(_) => Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "non-utf8 request line",
                    )),
                };
            }
            if self.carry.len() > MAX_LINE_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "line exceeds MAX_LINE_BYTES",
                ));
            }
            let mut chunk = [0u8; 4096];
            match s.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.carry.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn serve_conn(inner: &Inner, pid: ProcessId, stream: &mut ChaosStream<TcpStream>, ctx: &ConnCtx) {
    let mut reader = LineReader::new();
    let mut idle: u32 = 0;
    let mut seq: u64 = 0;
    loop {
        if inner.draining.load(Ordering::SeqCst) {
            let _ = stream.write_all(b"err closed\n");
            return;
        }
        let line = match reader.next_line(stream) {
            Ok(None) => return, // peer closed
            Ok(Some(line)) => {
                idle = 0;
                line
            }
            Err(e) if is_timeout(&e) => {
                idle += 1;
                if idle > inner.cfg.idle_polls {
                    return; // idle connection reaped
                }
                continue;
            }
            Err(_) => {
                inner.gauges.bump(pid, HealthEvent::IoError);
                return;
            }
        };
        let inflight = inner.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        inner.gauges.record_inflight(pid, inflight);
        // Rung annotation: the tier this request *entered* handling at.
        // The response's own `degraded` flag says whether the answer
        // actually came from the cheap tier (max-register reads stay
        // exact even on the degraded rung).
        let (execute_tick, rung) = if inner.cfg.spans {
            let rung = if inner.draining.load(Ordering::SeqCst) {
                SpanRung::Draining
            } else if overloaded(inner) {
                SpanRung::Degraded
            } else {
                SpanRung::Healthy
            };
            (inner.next_tick(), rung)
        } else {
            (0, SpanRung::Healthy)
        };
        let resp = handle(inner, pid, &line);
        inner.inflight.fetch_sub(1, Ordering::Relaxed);
        inner.gauges.bump(pid, HealthEvent::Served);
        let mut out = resp.encode();
        out.push('\n');
        let write_ok = stream.write_all(out.as_bytes()).is_ok();
        if inner.cfg.spans {
            let ack_tick = inner.next_tick();
            let verb = match &resp {
                Response::Err {
                    code: ErrCode::Parse,
                    ..
                } => "invalid".to_string(),
                _ => line.split(' ').next().unwrap_or("").to_string(),
            };
            let degraded = matches!(
                resp,
                Response::Value { degraded: true, .. } | Response::Vector { degraded: true, .. }
            );
            let outcome = if !write_ok {
                "write_failed".to_string()
            } else {
                match &resp {
                    Response::Err { code, .. } => format!("err {}", code.name()),
                    Response::Pong => "pong".to_string(),
                    _ => "ok".to_string(),
                }
            };
            inner.spans.lock().unwrap().push(RequestSpan {
                conn_id: ctx.conn_id,
                seq,
                worker: pid.0,
                verb,
                accept_tick: ctx.accept_tick,
                enqueue_tick: ctx.enqueue_tick,
                dequeue_tick: ctx.dequeue_tick,
                execute_tick,
                ack_tick,
                rung,
                degraded,
                chaos_injected: stream.injected(),
                outcome,
            });
        }
        seq += 1;
        if !write_ok {
            // The op (if any) is applied and logged; only the ack was
            // lost. The client's retry will dedup.
            inner.gauges.bump(pid, HealthEvent::IoError);
            return;
        }
    }
}

fn unsupported(detail: &str) -> Response {
    Response::Err {
        code: ErrCode::Unsupported,
        detail: detail.into(),
    }
}

/// Serving-side value bound: the audit log stores [`Word`]s (`i64`), so
/// wire values above `i64::MAX` are rejected rather than wrapped.
const MAX_VALUE: u64 = i64::MAX as u64;

/// Most increments one request may carry — bounds worker occupancy per
/// request.
const MAX_INCR_BATCH: u64 = 4096;

fn handle(inner: &Inner, pid: ProcessId, line: &str) -> Response {
    let req = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            inner.gauges.bump(pid, HealthEvent::ParseError);
            return Response::Err {
                code: ErrCode::Parse,
                detail: e.detail,
            };
        }
    };
    match req {
        Request::Ping => Response::Pong,
        // One wait-free registry snapshot (one root load per scalar),
        // already in the ascending-key order the wire format demands.
        Request::Metrics => Response::Metrics(inner.registry.snapshot().pairs()),
        Request::Incr { obj, k, token } => {
            let Some(served) = inner.object(&obj) else {
                return no_object(&obj);
            };
            let RealObject::Counter(counter) = &served.obj else {
                return unsupported("incr targets a counter");
            };
            if k > MAX_INCR_BATCH {
                return unsupported("incr count too large");
            }
            if let Some(token) = &token {
                let hit = inner.dedup.lock().unwrap().check_and_reserve(token);
                if hit {
                    inner.gauges.bump(pid, HealthEvent::DedupHit);
                    // Replay of an already-applied increment: ack
                    // without re-applying or re-logging.
                    return Response::Ok;
                }
            }
            let invoke = inner.next_tick();
            let Shadow::Counter(shadow) = &served.shadow else {
                unreachable!("counter objects carry a counter shadow");
            };
            for _ in 0..k {
                counter.increment(pid);
                shadow.increment(pid);
            }
            let response = inner.next_tick();
            let mut log = served.log.lock().unwrap();
            for _ in 0..k {
                log.push(LoggedOp {
                    pid: pid.0,
                    desc: OpDesc::CounterIncrement,
                    invoke,
                    response,
                    output: OpOutput::Unit,
                });
            }
            Response::Ok
        }
        Request::WriteMax { obj, v } => {
            let Some(served) = inner.object(&obj) else {
                return no_object(&obj);
            };
            let RealObject::MaxReg(reg) = &served.obj else {
                return unsupported("write_max targets a max register");
            };
            if v > MAX_VALUE {
                return unsupported("value too large");
            }
            let invoke = inner.next_tick();
            reg.write_max(pid, v);
            let response = inner.next_tick();
            served.log.lock().unwrap().push(LoggedOp {
                pid: pid.0,
                desc: OpDesc::WriteMax(v as Word),
                invoke,
                response,
                output: OpOutput::Unit,
            });
            Response::Ok
        }
        Request::Update { obj, v } => {
            let Some(served) = inner.object(&obj) else {
                return no_object(&obj);
            };
            let RealObject::Snapshot(snap) = &served.obj else {
                return unsupported("update targets a snapshot");
            };
            if v > MAX_VALUE {
                return unsupported("value too large");
            }
            let invoke = inner.next_tick();
            snap.update(pid, v);
            let response = inner.next_tick();
            served.log.lock().unwrap().push(LoggedOp {
                pid: pid.0,
                desc: OpDesc::Update(v as Word),
                invoke,
                response,
                output: OpOutput::Unit,
            });
            Response::Ok
        }
        Request::Read { obj } => {
            let Some(served) = inner.object(&obj) else {
                return no_object(&obj);
            };
            match &served.obj {
                RealObject::Counter(counter) => {
                    if overloaded(inner) {
                        let Shadow::Counter(shadow) = &served.shadow else {
                            unreachable!("counter objects carry a counter shadow");
                        };
                        let invoke = inner.next_tick();
                        let v = shadow.read();
                        let response = inner.next_tick();
                        // Realized (not configured) accuracy, for the
                        // metrics watermark: how far the published
                        // stripes currently trail the exact mirror.
                        let exact = shadow.exact();
                        if let Some(permille) = (exact.saturating_sub(v))
                            .saturating_mul(1000)
                            .checked_div(exact)
                        {
                            inner.gauges.record_degraded_error(pid, permille);
                        }
                        inner.gauges.bump(pid, HealthEvent::DegradedRead);
                        served.degraded.lock().unwrap().push(DegradedRead {
                            invoke,
                            response,
                            output: OpOutput::Value(v as Word),
                        });
                        return Response::Value { v, degraded: true };
                    }
                    let invoke = inner.next_tick();
                    let v = counter.read();
                    let response = inner.next_tick();
                    served.log.lock().unwrap().push(LoggedOp {
                        pid: pid.0,
                        desc: OpDesc::CounterRead,
                        invoke,
                        response,
                        output: OpOutput::Value(v as Word),
                    });
                    Response::Value { v, degraded: false }
                }
                RealObject::MaxReg(reg) => {
                    // Already one atomic load — never degrades.
                    let invoke = inner.next_tick();
                    let v = reg.read_max();
                    let response = inner.next_tick();
                    served.log.lock().unwrap().push(LoggedOp {
                        pid: pid.0,
                        desc: OpDesc::ReadMax,
                        invoke,
                        response,
                        output: OpOutput::Value(v as Word),
                    });
                    Response::Value { v, degraded: false }
                }
                RealObject::Snapshot(_) => unsupported("snapshots are read with scan"),
            }
        }
        Request::Scan { obj } => {
            let Some(served) = inner.object(&obj) else {
                return no_object(&obj);
            };
            let RealObject::Snapshot(snap) = &served.obj else {
                return unsupported("scan targets a snapshot");
            };
            let Shadow::Scan(cache) = &served.shadow else {
                unreachable!("snapshot objects carry a scan shadow");
            };
            if overloaded(inner) {
                let invoke = inner.next_tick();
                let vs = cache.lock().unwrap().clone();
                let response = inner.next_tick();
                inner.gauges.bump(pid, HealthEvent::DegradedRead);
                served.degraded.lock().unwrap().push(DegradedRead {
                    invoke,
                    response,
                    output: OpOutput::Vector(vs.iter().map(|&v| v as Word).collect()),
                });
                return Response::Vector { vs, degraded: true };
            }
            let invoke = inner.next_tick();
            let vs = snap.scan();
            let response = inner.next_tick();
            served.log.lock().unwrap().push(LoggedOp {
                pid: pid.0,
                desc: OpDesc::Scan,
                invoke,
                response,
                output: OpOutput::Vector(vs.iter().map(|&v| v as Word).collect()),
            });
            *cache.lock().unwrap() = vs.clone();
            Response::Vector {
                vs,
                degraded: false,
            }
        }
    }
}

fn overloaded(inner: &Inner) -> bool {
    inner.queue_depth.load(Ordering::Relaxed) >= inner.cfg.degrade_depth
}

fn no_object(name: &str) -> Response {
    Response::Err {
        code: ErrCode::NoObject,
        detail: format!("no such object {name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn small_server(defs: &[ObjectDef]) -> Server {
        Server::start(
            ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            },
            defs,
        )
        .unwrap()
    }

    fn roundtrip(stream: &mut TcpStream, reader: &mut impl BufRead, req: &str) -> String {
        stream.write_all(format!("{req}\n").as_bytes()).unwrap();
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => panic!("server closed while waiting for {req:?}"),
                Ok(_) => break,
                Err(e) if is_timeout(&e) => continue,
                Err(e) => panic!("read failed: {e}"),
            }
        }
        line.trim_end().to_string()
    }

    fn connect(server: &Server) -> (TcpStream, io::BufReader<TcpStream>) {
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let reader = io::BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn serves_counter_maxreg_snapshot_end_to_end() {
        let server = small_server(&[
            ObjectDef::counter("hits", "farray"),
            ObjectDef::maxreg("peak", "tree"),
            ObjectDef::snapshot("segments", "double_collect"),
        ]);
        let (mut s, mut r) = connect(&server);
        assert_eq!(roundtrip(&mut s, &mut r, "ping"), "pong");
        assert_eq!(roundtrip(&mut s, &mut r, "incr hits 3"), "ok");
        assert_eq!(roundtrip(&mut s, &mut r, "read hits"), "ok 3");
        assert_eq!(roundtrip(&mut s, &mut r, "write_max peak 41"), "ok");
        assert_eq!(roundtrip(&mut s, &mut r, "write_max peak 7"), "ok");
        assert_eq!(roundtrip(&mut s, &mut r, "read peak"), "ok 41");
        assert_eq!(roundtrip(&mut s, &mut r, "update segments 9"), "ok");
        let scan = roundtrip(&mut s, &mut r, "scan segments");
        assert!(scan == "ok 9,0" || scan == "ok 0,9", "scan: {scan}");
        let metrics = roundtrip(&mut s, &mut r, "metrics");
        assert!(metrics.contains("served="), "metrics: {metrics}");
        drop((s, r));
        let summary = server.shutdown();
        assert_eq!(summary.final_value("hits"), Some(3));
        assert_eq!(summary.final_value("peak"), Some(41));
        let report = summary.audit();
        assert!(report.ok(), "{report}");
    }

    #[test]
    fn semantic_errors_do_not_kill_the_connection() {
        let server = small_server(&[ObjectDef::counter("hits", "farray")]);
        let (mut s, mut r) = connect(&server);
        assert_eq!(
            roundtrip(&mut s, &mut r, "read ghost"),
            "err no_object no such object ghost"
        );
        assert!(roundtrip(&mut s, &mut r, "scan hits").starts_with("err unsupported"));
        assert!(roundtrip(&mut s, &mut r, "bogus line").starts_with("err parse"));
        assert!(roundtrip(&mut s, &mut r, "write_max hits 1").starts_with("err unsupported"));
        // Still alive:
        assert_eq!(roundtrip(&mut s, &mut r, "incr hits 1"), "ok");
        assert_eq!(roundtrip(&mut s, &mut r, "read hits"), "ok 1");
        drop((s, r));
        let summary = server.shutdown();
        assert!(summary.audit().ok());
        assert_eq!(summary.health.parse_errors, 1);
    }

    #[test]
    fn idempotency_tokens_apply_exactly_once() {
        let server = small_server(&[ObjectDef::counter("hits", "farray")]);
        let (mut s, mut r) = connect(&server);
        for _ in 0..5 {
            assert_eq!(roundtrip(&mut s, &mut r, "incr hits 2 tok-1"), "ok");
        }
        assert_eq!(roundtrip(&mut s, &mut r, "incr hits 2 tok-2"), "ok");
        assert_eq!(roundtrip(&mut s, &mut r, "read hits"), "ok 4");
        drop((s, r));
        let summary = server.shutdown();
        assert_eq!(summary.health.dedup_hits, 4);
        assert_eq!(summary.final_value("hits"), Some(4));
        assert!(summary.audit().ok());
    }

    #[test]
    fn dedup_window_eviction_is_fifo() {
        let mut w = DedupWindow::new(2);
        assert!(!w.check_and_reserve("a"));
        assert!(!w.check_and_reserve("b"));
        assert!(w.check_and_reserve("a"));
        assert!(!w.check_and_reserve("c")); // evicts a
        assert!(!w.check_and_reserve("a")); // a was forgotten
        assert!(w.check_and_reserve("c"));
    }

    #[test]
    fn drain_loses_no_acknowledged_increment() {
        let server = small_server(&[ObjectDef::counter("hits", "farray")]);
        let addr = server.addr();
        let acked = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let mut clients = Vec::new();
        for c in 0..3 {
            let acked = Arc::clone(&acked);
            let stop = Arc::clone(&stop);
            clients.push(thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_millis(100)))
                    .unwrap();
                let mut reader = io::BufReader::new(stream.try_clone().unwrap());
                let mut seq = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    seq += 1;
                    let req = format!("incr hits 1 t{c}:{seq}\n");
                    if stream.write_all(req.as_bytes()).is_err() {
                        break;
                    }
                    let mut line = String::new();
                    match reader.read_line(&mut line) {
                        Ok(n) if n > 0 && line.trim_end() == "ok" => {
                            acked.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => break,
                    }
                }
            }));
        }
        thread::sleep(Duration::from_millis(80));
        stop.store(true, Ordering::Relaxed);
        // Shut down while clients may still be mid-request.
        let summary = server.shutdown();
        for c in clients {
            let _ = c.join();
        }
        let acked = acked.load(Ordering::Relaxed);
        let applied = summary.final_value("hits").unwrap();
        assert!(acked > 0, "no request ever completed");
        assert!(
            applied >= acked,
            "drain lost acked ops: acked {acked} > applied {applied}"
        );
        assert!(summary.audit().ok());
    }

    #[test]
    fn metrics_dump_is_versioned_and_registry_backed() {
        let server = small_server(&[ObjectDef::counter("hits", "farray")]);
        let (mut s, mut r) = connect(&server);
        assert_eq!(roundtrip(&mut s, &mut r, "incr hits 2"), "ok");
        let line = roundtrip(&mut s, &mut r, "metrics");
        assert!(
            line.starts_with("ok ruo-telem-v1 "),
            "untagged metrics: {line}"
        );
        let Response::Metrics(pairs) = Response::parse(&line).unwrap() else {
            panic!("not a metrics response: {line}");
        };
        // Ascending keys, and every health scalar present.
        assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0), "{pairs:?}");
        assert_eq!(pairs.len(), 12);
        for key in ["admitted", "served", "shed", "queue_depth_peak"] {
            assert!(pairs.iter().any(|(k, _)| k == key), "missing {key}");
        }
        drop((s, r));
        server.shutdown();
    }

    #[test]
    fn spans_follow_the_request_lifecycle() {
        let server = Server::start(
            ServeConfig {
                workers: 2,
                spans: true,
                ..ServeConfig::default()
            },
            &[ObjectDef::counter("hits", "farray")],
        )
        .unwrap();
        let (mut s, mut r) = connect(&server);
        assert_eq!(roundtrip(&mut s, &mut r, "incr hits 1"), "ok");
        assert_eq!(roundtrip(&mut s, &mut r, "read hits"), "ok 1");
        assert!(roundtrip(&mut s, &mut r, "read ghost").starts_with("err no_object"));
        assert!(roundtrip(&mut s, &mut r, "not a verb").starts_with("err parse"));
        drop((s, r));
        let summary = server.shutdown();
        assert_eq!(summary.spans.len(), 4);
        for span in &summary.spans {
            // The lifecycle ticks are ordered by construction.
            assert!(span.accept_tick < span.enqueue_tick, "{span:?}");
            assert!(span.enqueue_tick < span.dequeue_tick, "{span:?}");
            assert!(span.dequeue_tick < span.execute_tick, "{span:?}");
            assert!(span.execute_tick < span.ack_tick, "{span:?}");
            assert_eq!(span.rung, SpanRung::Healthy);
            assert!(!span.degraded);
        }
        // One connection, requests in order.
        assert!(summary.spans.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert_eq!(summary.spans[0].verb, "incr");
        assert_eq!(summary.spans[0].outcome, "ok");
        assert_eq!(summary.spans[1].verb, "read");
        assert_eq!(summary.spans[2].outcome, "err no_object");
        assert_eq!(summary.spans[3].verb, "invalid");
        assert_eq!(summary.spans[3].outcome, "err parse");
        // Exports are well-formed.
        let jsonl = summary.spans_to_jsonl();
        assert!(jsonl.lines().next().unwrap().contains("ruo-serve-span-v1"));
        assert_eq!(jsonl.lines().count(), 5);
        let chrome = summary.spans_to_chrome_trace();
        ruo_scenario::Json::parse(&chrome).expect("chrome trace parses");
        assert!(summary.audit().ok());
    }

    #[test]
    fn spans_off_records_nothing() {
        let server = small_server(&[ObjectDef::counter("hits", "farray")]);
        let (mut s, mut r) = connect(&server);
        assert_eq!(roundtrip(&mut s, &mut r, "incr hits 1"), "ok");
        drop((s, r));
        let summary = server.shutdown();
        assert!(summary.spans.is_empty());
        assert_eq!(summary.spans_to_jsonl().lines().count(), 1);
    }

    #[test]
    fn unknown_impl_is_a_start_error() {
        let err = Server::start(
            ServeConfig::default(),
            &[ObjectDef::counter("hits", "nope")],
        );
        assert!(matches!(err, Err(StartError::Build(_))));
        let err = Server::start(ServeConfig::default(), &[]);
        assert!(matches!(err, Err(StartError::Config(_))));
    }
}
