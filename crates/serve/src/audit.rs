//! Post-run linearizability audit of the server's per-object op log.
//!
//! Every exact operation the server applies is logged with invoke /
//! response ticks drawn from one global atomic counter: the invoke tick
//! is fetched before the object operation starts and the response tick
//! after it returns, so tick-order precedence is implied by real-time
//! precedence (never the reverse — overlap is the conservative
//! direction). [`audit`] replays each object's log through
//! [`ruo_sim::lin::wgl::check_interval`], so retry/dedup/chaos
//! semantics are *verified* against the sequential spec, not assumed.
//!
//! Degraded-tier reads are deliberately excluded from the history —
//! they are flagged non-linearizable on the wire — but they are not
//! unchecked: the degraded counter tier is a real k-multiplicative
//! accurate object ([`ruo_core::counter::ApproxCounter`]), so every
//! degraded answer `v` must sit inside the k-envelope of the exact
//! increments the server applied around it. [`audit`] enforces both
//! sides per read: `v` may not exceed the increments *invoked* before
//! the degraded read finished, and `k·v` must cover the increments
//! *completed* before it started.

use std::fmt;

use ruo_scenario::registry::Family;
use ruo_sim::lin::check_interval;
use ruo_sim::spec::SeqSpec;
use ruo_sim::{History, OpDesc, OpOutput, OpRecord, ProcessId};

/// One exact operation applied by the server.
#[derive(Debug, Clone)]
pub struct LoggedOp {
    /// Worker index that applied the op (each worker is one process
    /// identity, used by one thread at a time).
    pub pid: usize,
    /// The operation.
    pub desc: OpDesc,
    /// Global tick fetched just before the object op started.
    pub invoke: u64,
    /// Global tick fetched just after the object op returned.
    pub response: u64,
    /// The op's output.
    pub output: OpOutput,
}

/// One degraded-tier read (excluded from the linearizable history,
/// k-envelope-checked instead).
#[derive(Debug, Clone)]
pub struct DegradedRead {
    /// Global tick fetched just before the degraded answer was
    /// computed.
    pub invoke: u64,
    /// Global tick fetched just after.
    pub response: u64,
    /// The answer served.
    pub output: OpOutput,
}

/// Everything the server logged about one object.
#[derive(Debug, Clone)]
pub struct ObjectLog {
    /// The object's registry name.
    pub name: String,
    /// Its family (selects the sequential spec).
    pub family: Family,
    /// Number of process identities (workers) that shared it.
    pub n: usize,
    /// Exact ops, in no particular order (the audit sorts by invoke).
    pub ops: Vec<LoggedOp>,
    /// Degraded-tier reads.
    pub degraded: Vec<DegradedRead>,
    /// Accuracy factor of the degraded tier (`≥ 1`; the envelope
    /// degraded counter reads are checked against).
    pub accuracy_k: u64,
}

/// Audit verdict for one object.
#[derive(Debug, Clone)]
pub struct ObjectAudit {
    /// The object's registry name.
    pub name: String,
    /// Family name (`"counter"`, …).
    pub family: &'static str,
    /// Exact ops checked.
    pub ops: usize,
    /// Degraded reads bound-checked.
    pub degraded_reads: usize,
    /// `check_interval` violation, if any.
    pub violation: Option<String>,
    /// Degraded counter reads that escaped the k-envelope of the
    /// increments the server applied around them.
    pub degraded_bound_violations: usize,
}

impl ObjectAudit {
    /// Whether this object passed both checks.
    pub fn ok(&self) -> bool {
        self.violation.is_none() && self.degraded_bound_violations == 0
    }
}

/// The whole audit: one verdict per object.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Per-object verdicts.
    pub objects: Vec<ObjectAudit>,
}

impl AuditReport {
    /// Total violations (linearizability + degraded bounds) across all
    /// objects.
    pub fn violations(&self) -> usize {
        self.objects
            .iter()
            .map(|o| usize::from(o.violation.is_some()) + o.degraded_bound_violations)
            .sum()
    }

    /// Whether every object passed.
    pub fn ok(&self) -> bool {
        self.violations() == 0
    }

    /// Total exact ops checked.
    pub fn total_ops(&self) -> usize {
        self.objects.iter().map(|o| o.ops).sum()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for o in &self.objects {
            match &o.violation {
                None if o.degraded_bound_violations == 0 => writeln!(
                    f,
                    "audit {:<12} {:<8} {:>6} ops  {:>4} degraded  ok",
                    o.name, o.family, o.ops, o.degraded_reads
                )?,
                None => writeln!(
                    f,
                    "audit {:<12} {:<8} {:>6} ops  VIOLATION degraded bound x{}",
                    o.name, o.family, o.ops, o.degraded_bound_violations
                )?,
                Some(v) => writeln!(
                    f,
                    "audit {:<12} {:<8} {:>6} ops  VIOLATION {}",
                    o.name, o.family, o.ops, v
                )?,
            }
        }
        Ok(())
    }
}

/// The sequential spec an object's family is checked against.
fn spec_for(family: Family, n: usize) -> SeqSpec {
    match family {
        Family::MaxReg => SeqSpec::MaxRegister { initial: 0 },
        Family::Counter => SeqSpec::Counter,
        Family::Snapshot => SeqSpec::Snapshot { n, initial: 0 },
    }
}

/// Replays one object's log through the interval checker.
pub fn audit_object(log: &ObjectLog) -> ObjectAudit {
    let mut ops: Vec<&LoggedOp> = log.ops.iter().collect();
    ops.sort_by_key(|op| op.invoke);
    let mut history = History::new();
    for op in &ops {
        debug_assert!(op.invoke < op.response, "zero-width logged interval");
        history.push(OpRecord {
            pid: ProcessId(op.pid),
            desc: op.desc.clone(),
            invoke: op.invoke as usize,
            response: Some(op.response as usize),
            output: Some(op.output.clone()),
            steps: 1,
        });
    }
    let violation = check_interval(&history, &spec_for(log.family, log.n))
        .err()
        .map(|v| format!("{:?}: {}", v.kind, v.detail));

    // Degraded counter reads are served by a k-accurate object that
    // mirrors every increment the server applies, so each answer must
    // sit in the two-sided k-envelope of the exact log around it:
    //
    // * never an overestimate — `v` cannot exceed the increments
    //   *invoked* before the degraded read finished (the shadow is
    //   bumped after the invoke tick is fetched);
    // * bounded underestimate — `k·v` must cover the increments
    //   *completed* before the degraded read started (their shadow
    //   bumps all landed before the collect began).
    //
    // At k = 1 this collapses to "exactly the applied count at the
    // read's ticks", strictly stronger than the old applied-total
    // bound.
    let mut degraded_bound_violations = 0;
    if log.family == Family::Counter && !log.degraded.is_empty() {
        let k = log.accuracy_k.max(1);
        let mut inc_invokes: Vec<u64> = Vec::new();
        let mut inc_responses: Vec<u64> = Vec::new();
        for op in &log.ops {
            if matches!(op.desc, OpDesc::CounterIncrement) {
                inc_invokes.push(op.invoke);
                inc_responses.push(op.response);
            }
        }
        inc_invokes.sort_unstable();
        inc_responses.sort_unstable();
        for d in &log.degraded {
            if let OpOutput::Value(v) = d.output {
                if v < 0 {
                    degraded_bound_violations += 1;
                    continue;
                }
                let v = v as u64;
                let hi = inc_invokes.partition_point(|&t| t < d.response) as u64;
                let lo = inc_responses.partition_point(|&t| t < d.invoke) as u64;
                if v > hi || (v as u128) * (k as u128) < lo as u128 {
                    degraded_bound_violations += 1;
                }
            }
        }
    }

    ObjectAudit {
        name: log.name.clone(),
        family: log.family.name(),
        ops: log.ops.len(),
        degraded_reads: log.degraded.len(),
        violation,
        degraded_bound_violations,
    }
}

/// Audits every object's log.
pub fn audit(logs: &[ObjectLog]) -> AuditReport {
    AuditReport {
        objects: logs.iter().map(audit_object).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_log(ops: Vec<LoggedOp>) -> ObjectLog {
        ObjectLog {
            name: "hits".into(),
            family: Family::Counter,
            n: 2,
            ops,
            degraded: Vec::new(),
            accuracy_k: 1,
        }
    }

    fn op(pid: usize, desc: OpDesc, invoke: u64, response: u64, output: OpOutput) -> LoggedOp {
        LoggedOp {
            pid,
            desc,
            invoke,
            response,
            output,
        }
    }

    #[test]
    fn clean_counter_log_passes() {
        let log = counter_log(vec![
            op(0, OpDesc::CounterIncrement, 0, 3, OpOutput::Unit),
            op(1, OpDesc::CounterIncrement, 1, 4, OpOutput::Unit),
            op(0, OpDesc::CounterRead, 5, 6, OpOutput::Value(2)),
        ]);
        let report = audit(&[log]);
        assert!(report.ok(), "{report}");
        assert_eq!(report.total_ops(), 3);
    }

    #[test]
    fn phantom_count_is_a_violation() {
        // A read of 3 after only two increments cannot linearize.
        let log = counter_log(vec![
            op(0, OpDesc::CounterIncrement, 0, 3, OpOutput::Unit),
            op(1, OpDesc::CounterIncrement, 1, 4, OpOutput::Unit),
            op(0, OpDesc::CounterRead, 5, 6, OpOutput::Value(3)),
        ]);
        let report = audit(&[log]);
        assert!(!report.ok());
        assert_eq!(report.violations(), 1);
        assert!(report.objects[0].violation.is_some());
    }

    #[test]
    fn lost_update_is_a_violation() {
        // Two sequential increments, then a read of 1: the dedup window
        // failing open (double-apply) is caught the other way round; a
        // lost ack shows up as a stale read like this.
        let log = counter_log(vec![
            op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit),
            op(1, OpDesc::CounterIncrement, 2, 3, OpOutput::Unit),
            op(0, OpDesc::CounterRead, 4, 5, OpOutput::Value(1)),
        ]);
        assert!(!audit(&[log]).ok());
    }

    #[test]
    fn unsorted_log_is_sorted_before_checking() {
        let log = counter_log(vec![
            op(0, OpDesc::CounterRead, 5, 6, OpOutput::Value(1)),
            op(0, OpDesc::CounterIncrement, 0, 3, OpOutput::Unit),
        ]);
        assert!(audit(&[log]).ok());
    }

    #[test]
    fn degraded_reads_are_bound_checked_not_linearized() {
        let mut log = counter_log(vec![op(0, OpDesc::CounterIncrement, 0, 1, OpOutput::Unit)]);
        // A degraded read of 1 is fine (≤ increments invoked before it)…
        log.degraded.push(DegradedRead {
            invoke: 2,
            response: 3,
            output: OpOutput::Value(1),
        });
        assert!(audit(&[log.clone()]).ok());
        // …a degraded read of 2 exceeds everything the server applied.
        log.degraded.push(DegradedRead {
            invoke: 4,
            response: 5,
            output: OpOutput::Value(2),
        });
        let report = audit(&[log]);
        assert!(!report.ok());
        assert_eq!(report.objects[0].degraded_bound_violations, 1);
    }

    #[test]
    fn degraded_underestimates_are_held_to_the_k_envelope() {
        // Four increments completed before the degraded read starts.
        let mut log = counter_log(
            (0..4)
                .map(|i| {
                    op(
                        0,
                        OpDesc::CounterIncrement,
                        2 * i,
                        2 * i + 1,
                        OpOutput::Unit,
                    )
                })
                .collect(),
        );
        log.accuracy_k = 2;
        // k = 2: a read of 2 covers the 4 completed increments (2·2 ≥ 4)…
        log.degraded.push(DegradedRead {
            invoke: 10,
            response: 11,
            output: OpOutput::Value(2),
        });
        assert!(audit(&[log.clone()]).ok(), "{}", audit(&[log.clone()]));
        // …a read of 1 does not (1·2 < 4): the tier drifted past its k.
        log.degraded.push(DegradedRead {
            invoke: 12,
            response: 13,
            output: OpOutput::Value(1),
        });
        let report = audit(&[log.clone()]);
        assert_eq!(report.objects[0].degraded_bound_violations, 1);
        // Increments still in flight when the read started don't count
        // against the lower bound: a read of 0 before anything
        // completes is legal at any k.
        log.degraded.clear();
        log.degraded.push(DegradedRead {
            invoke: 0,
            response: 20,
            output: OpOutput::Value(0),
        });
        assert!(audit(&[log]).ok());
    }

    #[test]
    fn maxreg_and_snapshot_specs_apply() {
        let maxreg = ObjectLog {
            name: "peak".into(),
            family: Family::MaxReg,
            n: 2,
            ops: vec![
                op(0, OpDesc::WriteMax(7), 0, 1, OpOutput::Unit),
                op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(7)),
            ],
            degraded: Vec::new(),
            accuracy_k: 1,
        };
        let snap = ObjectLog {
            name: "segments".into(),
            family: Family::Snapshot,
            n: 2,
            ops: vec![
                op(1, OpDesc::Update(5), 0, 1, OpOutput::Unit),
                op(0, OpDesc::Scan, 2, 3, OpOutput::Vector(vec![0, 5])),
            ],
            degraded: Vec::new(),
            accuracy_k: 1,
        };
        let report = audit(&[maxreg, snap]);
        assert!(report.ok(), "{report}");

        let bad = ObjectLog {
            name: "peak".into(),
            family: Family::MaxReg,
            n: 2,
            ops: vec![
                op(0, OpDesc::WriteMax(7), 0, 1, OpOutput::Unit),
                op(1, OpDesc::ReadMax, 2, 3, OpOutput::Value(3)),
            ],
            degraded: Vec::new(),
            accuracy_k: 1,
        };
        assert!(!audit(&[bad]).ok());
    }
}
