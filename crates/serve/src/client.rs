//! A fault-tolerant client: per-attempt timeouts, reconnects, and
//! seeded exponential backoff.
//!
//! Every request runs under an attempt timeout; on an I/O error, a
//! timeout, or a retryable server error (`overload` / `deadline` /
//! `closed`) the client reconnects and retries after a
//! [`BackoffPolicy`] delay (exponential, capped, SplitMix64-jittered —
//! deterministic per client seed). Increments carry an idempotency
//! token that is **reused across retries of the same logical request**,
//! so a retry whose predecessor was applied-but-unacked dedups on the
//! server instead of double-counting.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

use ruo_metrics::BackoffPolicy;
use ruo_sim::SplitMix64;

use crate::chaos::{ChaosStream, NetFaultPlan};
use crate::proto::{ErrCode, ProtoError, Request, Response, MAX_LINE_BYTES};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Socket read/write timeout per attempt.
    pub attempt_timeout: Duration,
    /// Retry delay policy.
    pub backoff: BackoffPolicy,
    /// Attempts before giving up (1 = no retries).
    pub max_attempts: u32,
    /// Client-side chaos wrapped around every outbound connection.
    pub chaos: Option<NetFaultPlan>,
}

impl ClientConfig {
    /// Defaults sized for tests and the swarm: 100 ms attempts, 6
    /// attempts, 1–32 ms jittered backoff.
    pub fn new(addr: SocketAddr) -> Self {
        ClientConfig {
            addr,
            attempt_timeout: Duration::from_millis(100),
            backoff: BackoffPolicy::new(Duration::from_millis(1), Duration::from_millis(32), 0.25),
            max_attempts: 6,
            chaos: None,
        }
    }
}

/// Why a request ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// All attempts failed; the last failure is attached.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Human-readable last failure.
        last: String,
    },
    /// The server answered with a non-retryable error.
    Rejected {
        /// The error code.
        code: ErrCode,
        /// Server-provided detail.
        detail: String,
    },
    /// The server answered with a response of the wrong shape.
    BadResponse(ProtoError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(f, "request failed after {attempts} attempts: {last}")
            }
            ClientError::Rejected { code, detail } => {
                write!(f, "server rejected request: {} {detail}", code.name())
            }
            ClientError::BadResponse(e) => write!(f, "bad response: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Counters a client accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests that eventually succeeded.
    pub ok: u64,
    /// Requests that exhausted their attempts or were rejected.
    pub failed: u64,
    /// Extra attempts beyond the first, across all requests.
    pub retries: u64,
    /// Reconnects performed.
    pub reconnects: u64,
    /// Successful responses flagged `degraded`.
    pub degraded: u64,
    /// `incr` acks received (exactly-once by token).
    pub acked_incrs: u64,
}

/// A value read plus its service tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadResult {
    /// The value.
    pub value: u64,
    /// Whether it came from the degraded tier.
    pub degraded: bool,
}

/// A scan result plus its service tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// Segment values.
    pub values: Vec<u64>,
    /// Whether it came from the degraded tier.
    pub degraded: bool,
}

/// A retrying line-protocol client. Not thread-safe: one client per
/// thread (the swarm spawns one per simulated user).
pub struct Client {
    cfg: ClientConfig,
    conn: Option<ChaosStream<TcpStream>>,
    carry: Vec<u8>,
    rng: SplitMix64,
    client_id: u64,
    seq: u64,
    conn_seq: u64,
    stats: ClientStats,
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.cfg.addr)
            .field("client_id", &self.client_id)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Client {
    /// Creates a client. `client_id` seeds the RNG (jitter + chaos
    /// connection ids) and namespaces idempotency tokens; give every
    /// client a distinct id.
    pub fn new(cfg: ClientConfig, client_id: u64) -> Self {
        Client {
            rng: SplitMix64::new(0x5EED ^ client_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            cfg,
            conn: None,
            carry: Vec::new(),
            client_id,
            seq: 0,
            conn_seq: 0,
            stats: ClientStats::default(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// `k` increments of counter `obj`, idempotent across retries.
    pub fn incr(&mut self, obj: &str, k: u64) -> Result<(), ClientError> {
        self.seq += 1;
        let token = format!("c{}:{}", self.client_id, self.seq);
        let req = Request::Incr {
            obj: obj.into(),
            k,
            token: Some(token),
        };
        match self.request(&req)? {
            Response::Ok => {
                self.stats.acked_incrs += 1;
                Ok(())
            }
            other => Err(self.shape_error(other)),
        }
    }

    /// `WriteMax(v)` on max register `obj`.
    pub fn write_max(&mut self, obj: &str, v: u64) -> Result<(), ClientError> {
        let req = Request::WriteMax { obj: obj.into(), v };
        match self.request(&req)? {
            Response::Ok => Ok(()),
            other => Err(self.shape_error(other)),
        }
    }

    /// Updates this client's serving worker's segment of snapshot
    /// `obj`.
    pub fn update(&mut self, obj: &str, v: u64) -> Result<(), ClientError> {
        let req = Request::Update { obj: obj.into(), v };
        match self.request(&req)? {
            Response::Ok => Ok(()),
            other => Err(self.shape_error(other)),
        }
    }

    /// Reads counter or max register `obj`.
    pub fn read(&mut self, obj: &str) -> Result<ReadResult, ClientError> {
        let req = Request::Read { obj: obj.into() };
        match self.request(&req)? {
            Response::Value { v, degraded } => {
                if degraded {
                    self.stats.degraded += 1;
                }
                Ok(ReadResult { value: v, degraded })
            }
            other => Err(self.shape_error(other)),
        }
    }

    /// Scans snapshot `obj`.
    pub fn scan(&mut self, obj: &str) -> Result<ScanResult, ClientError> {
        let req = Request::Scan { obj: obj.into() };
        match self.request(&req)?.into_vector() {
            Response::Vector { vs, degraded } => {
                if degraded {
                    self.stats.degraded += 1;
                }
                Ok(ScanResult {
                    values: vs,
                    degraded,
                })
            }
            other => Err(self.shape_error(other)),
        }
    }

    /// Fetches the server's health gauges.
    pub fn metrics(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics(pairs) => Ok(pairs),
            other => Err(self.shape_error(other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(self.shape_error(other)),
        }
    }

    fn shape_error(&mut self, resp: Response) -> ClientError {
        self.stats.failed += 1;
        ClientError::BadResponse(ProtoError {
            detail: format!("unexpected response shape: {}", resp.encode()),
        })
    }

    /// One logical request: attempts with backoff until a definitive
    /// response arrives or attempts are exhausted.
    fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        let mut last = String::new();
        for attempt in 0..self.cfg.max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                let delay = self.cfg.backoff.delay(attempt - 1, &mut self.rng);
                thread::sleep(delay);
            }
            match self.attempt(req) {
                Ok(Response::Err { code, detail }) if code.retryable() => {
                    last = format!("err {} {detail}", code.name());
                    // A refused request was not applied; a fresh
                    // connection gives the gate another look.
                    self.conn = None;
                }
                Ok(Response::Err { code, detail }) => {
                    self.stats.failed += 1;
                    return Err(ClientError::Rejected { code, detail });
                }
                Ok(resp) => {
                    self.stats.ok += 1;
                    return Ok(resp);
                }
                Err(e) => {
                    last = e.to_string();
                    self.conn = None;
                }
            }
        }
        self.stats.failed += 1;
        Err(ClientError::Exhausted {
            attempts: self.cfg.max_attempts,
            last,
        })
    }

    /// One attempt on one connection (connecting if needed).
    fn attempt(&mut self, req: &Request) -> io::Result<Response> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.cfg.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(self.cfg.attempt_timeout))?;
            stream.set_write_timeout(Some(self.cfg.attempt_timeout))?;
            self.conn_seq += 1;
            let conn_id = self.client_id.wrapping_mul(1_000_003) ^ self.conn_seq;
            let wrapped = match &self.cfg.chaos {
                Some(plan) => ChaosStream::new(stream, plan, conn_id),
                None => ChaosStream::passthrough(stream),
            };
            self.conn = Some(wrapped);
            self.carry.clear();
            if self.conn_seq > 1 {
                self.stats.reconnects += 1;
            }
        }
        let conn = self.conn.as_mut().expect("just connected");
        let mut line = req.encode();
        line.push('\n');
        conn.write_all(line.as_bytes())?;
        let resp_line = read_line(conn, &mut self.carry)?;
        Response::parse(&resp_line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.detail))
    }
}

/// Reads one newline-terminated line, carrying partial frames in `carry`.
fn read_line<S: Read>(s: &mut S, carry: &mut Vec<u8>) -> io::Result<String> {
    loop {
        if let Some(pos) = carry.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = carry.drain(..=pos).collect();
            line.pop();
            return String::from_utf8(line)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 response"));
        }
        if carry.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "response line too long",
            ));
        }
        let mut chunk = [0u8; 4096];
        match s.read(&mut chunk) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ))
            }
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
}
