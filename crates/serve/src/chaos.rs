//! Network chaos: seedable fault plans for TCP streams.
//!
//! The network twin of `ruo_sim::fault`: where [`ruo_sim::FaultPlan`]
//! crashes and stalls *processes* at chosen shared-memory events,
//! [`NetFaultPlan`] drops, half-closes, truncates, delays and stalls
//! *sockets* at chosen I/O events. Plans are deterministic per seed and
//! per connection id, so a chaotic run can be replayed exactly.
//!
//! A [`ChaosStream`] wraps any `Read + Write` transport — the client's
//! connection, the server's accepted socket, or both sides at once —
//! and injects its connection's faults at the configured points.

use std::io::{self, Read, Write};
use std::thread;
use std::time::Duration;

use ruo_sim::SplitMix64;

/// One injected network fault. Event indices are 1-based: "write 3" is
/// the third `write` call on the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The connection dies *instead of* the `at_write`-th write: the
    /// write fails and every later read/write fails too.
    Drop {
        /// 1-based write index that fails.
        at_write: u64,
    },
    /// The write side closes *after* the `at_write`-th write succeeds:
    /// later writes fail, reads keep working (the peer sees EOF).
    HalfClose {
        /// 1-based index of the last write that succeeds.
        at_write: u64,
    },
    /// The `at_write`-th write delivers only its first `keep_bytes`
    /// bytes but reports full success — a truncated frame. The stream
    /// is wedged afterwards (later writes fail).
    TruncateWrite {
        /// 1-based write index to truncate.
        at_write: u64,
        /// Bytes actually delivered.
        keep_bytes: usize,
    },
    /// The `at_write`-th write is delayed by `micros` before delivery.
    DelayWrite {
        /// 1-based write index to delay.
        at_write: u64,
        /// Injected latency, in microseconds.
        micros: u64,
    },
    /// The `at_read`-th read stalls for `micros` before delivering — a
    /// bounded window, mirroring `Fault::Stall`'s bounded hold.
    StallRead {
        /// 1-based read index to stall.
        at_read: u64,
        /// Stall length, in microseconds.
        micros: u64,
    },
}

/// A seeded, per-connection fault plan.
///
/// Two layers, mirroring [`ruo_sim::FaultPlan`]'s explicit-plus-random
/// split: faults added with [`NetFaultPlan::with`] hit *every*
/// connection at fixed points (deterministic unit tests), while the
/// per-mille profile rolls faults independently per connection id from
/// the seed ([`NetFaultPlan::chaos`] is the stock profile the swarm
/// uses). [`NetFaultPlan::faults_for_conn`] is a pure function of
/// `(plan, conn_id)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFaultPlan {
    seed: u64,
    drop_per_mille: u64,
    half_close_per_mille: u64,
    truncate_per_mille: u64,
    delay_per_mille: u64,
    stall_per_mille: u64,
    /// Random faults trigger within the first this-many writes/reads.
    window: u64,
    max_delay_micros: u64,
    max_stall_micros: u64,
    fixed: Vec<NetFault>,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        NetFaultPlan::new()
    }
}

impl NetFaultPlan {
    /// An empty plan: no faults on any connection.
    pub fn new() -> Self {
        NetFaultPlan {
            seed: 0,
            drop_per_mille: 0,
            half_close_per_mille: 0,
            truncate_per_mille: 0,
            delay_per_mille: 0,
            stall_per_mille: 0,
            window: 8,
            max_delay_micros: 0,
            max_stall_micros: 0,
            fixed: Vec::new(),
        }
    }

    /// The stock chaos profile used by the swarm's chaos phase: on each
    /// connection, 15% chance of a drop, 5% half-close, 10% truncated
    /// write, 20% delayed write (≤ 2 ms), 20% stalled read (≤ 5 ms),
    /// all within the first 8 I/O events.
    pub fn chaos(seed: u64) -> Self {
        NetFaultPlan {
            seed,
            drop_per_mille: 150,
            half_close_per_mille: 50,
            truncate_per_mille: 100,
            delay_per_mille: 200,
            stall_per_mille: 200,
            window: 8,
            max_delay_micros: 2_000,
            max_stall_micros: 5_000,
            fixed: Vec::new(),
        }
    }

    /// Adds a fault injected on every connection.
    pub fn with(mut self, fault: NetFault) -> Self {
        self.fixed.push(fault);
        self
    }

    /// Sets the seed the per-connection rolls derive from.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-mille probability (0..=1000) that a connection's
    /// socket is dropped mid-conversation.
    pub fn drop_per_mille(mut self, p: u64) -> Self {
        assert!(p <= 1000);
        self.drop_per_mille = p;
        self
    }

    /// Sets the per-mille probability of a stalled read (stall length
    /// uniform in `1..=max_micros` — the bounded window).
    pub fn stall_per_mille(mut self, p: u64, max_micros: u64) -> Self {
        assert!(p <= 1000);
        self.stall_per_mille = p;
        self.max_stall_micros = max_micros;
        self
    }

    /// Sets the per-mille probability of a truncated write.
    pub fn truncate_per_mille(mut self, p: u64) -> Self {
        assert!(p <= 1000);
        self.truncate_per_mille = p;
        self
    }

    /// Whether this plan can never inject anything.
    pub fn is_noop(&self) -> bool {
        self.fixed.is_empty()
            && self.drop_per_mille == 0
            && self.half_close_per_mille == 0
            && self.truncate_per_mille == 0
            && self.delay_per_mille == 0
            && self.stall_per_mille == 0
    }

    /// The faults connection `conn_id` will experience. Deterministic:
    /// same plan + same id ⇒ same faults.
    pub fn faults_for_conn(&self, conn_id: u64) -> Vec<NetFault> {
        let mut faults = self.fixed.clone();
        let mut rng = SplitMix64::new(
            self.seed ^ conn_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC2B2_AE3D_27D4_EB4F,
        );
        // Burn one draw even when a category is disabled so enabling
        // one category never reshuffles the others.
        let mut roll = |per_mille: u64| -> bool { rng.gen_below(1000) < per_mille };
        let window = self.window.max(1);
        let dropped = roll(self.drop_per_mille);
        let half = roll(self.half_close_per_mille);
        let trunc = roll(self.truncate_per_mille);
        let delay = roll(self.delay_per_mille);
        let stall = roll(self.stall_per_mille);
        if dropped {
            faults.push(NetFault::Drop {
                at_write: rng.gen_below(window) + 1,
            });
        } else if half {
            // Drop wins when both roll: a dead socket subsumes a
            // half-closed one.
            faults.push(NetFault::HalfClose {
                at_write: rng.gen_below(window) + 1,
            });
        }
        if trunc && !dropped {
            faults.push(NetFault::TruncateWrite {
                at_write: rng.gen_below(window) + 1,
                keep_bytes: rng.gen_below(6) as usize,
            });
        }
        if delay && self.max_delay_micros > 0 {
            faults.push(NetFault::DelayWrite {
                at_write: rng.gen_below(window) + 1,
                micros: rng.gen_below(self.max_delay_micros) + 1,
            });
        }
        if stall && self.max_stall_micros > 0 {
            faults.push(NetFault::StallRead {
                at_read: rng.gen_below(window) + 1,
                micros: rng.gen_below(self.max_stall_micros) + 1,
            });
        }
        faults
    }
}

/// A `Read + Write` transport with a connection's faults injected.
///
/// Wraps either side of the socket: the server wraps accepted streams,
/// the client wraps its outbound connection, and tests wrap in-memory
/// pipes. Event counters advance per `read`/`write` call — the line
/// protocol makes one call per line, so "write 3" ≈ "the third line".
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    faults: Vec<NetFault>,
    writes: u64,
    reads: u64,
    dead: bool,
    write_closed: bool,
    injected: u64,
}

impl<S: Read + Write> ChaosStream<S> {
    /// Wraps `inner` with the faults `plan` assigns to `conn_id`.
    pub fn new(inner: S, plan: &NetFaultPlan, conn_id: u64) -> Self {
        ChaosStream {
            inner,
            faults: plan.faults_for_conn(conn_id),
            writes: 0,
            reads: 0,
            dead: false,
            write_closed: false,
            injected: 0,
        }
    }

    /// Wraps `inner` with no faults at all.
    pub fn passthrough(inner: S) -> Self {
        ChaosStream {
            inner,
            faults: Vec::new(),
            writes: 0,
            reads: 0,
            dead: false,
            write_closed: false,
            injected: 0,
        }
    }

    /// How many faults have fired on this stream so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// The faults scheduled for this stream (fired or not).
    pub fn faults(&self) -> &[NetFault] {
        &self.faults
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read + Write> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection dropped",
            ));
        }
        self.reads += 1;
        let at = self.reads;
        for f in &self.faults {
            if let NetFault::StallRead { at_read, micros } = *f {
                if at_read == at {
                    self.injected += 1;
                    thread::sleep(Duration::from_micros(micros));
                }
            }
        }
        self.inner.read(buf)
    }
}

impl<S: Read + Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection dropped",
            ));
        }
        if self.write_closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "chaos: write side closed",
            ));
        }
        self.writes += 1;
        let at = self.writes;
        // Delay fires first (latency precedes the outcome), then the
        // destructive faults in severity order.
        for f in &self.faults {
            if let NetFault::DelayWrite { at_write, micros } = *f {
                if at_write == at {
                    self.injected += 1;
                    thread::sleep(Duration::from_micros(micros));
                }
            }
        }
        for f in &self.faults {
            match *f {
                NetFault::Drop { at_write } if at_write == at => {
                    self.injected += 1;
                    self.dead = true;
                    return Err(io::Error::new(
                        io::ErrorKind::BrokenPipe,
                        "chaos: connection dropped",
                    ));
                }
                NetFault::TruncateWrite {
                    at_write,
                    keep_bytes,
                } if at_write == at => {
                    self.injected += 1;
                    let keep = keep_bytes.min(buf.len());
                    if keep > 0 {
                        self.inner.write_all(&buf[..keep])?;
                        self.inner.flush()?;
                    }
                    // Report full success: the caller believes the
                    // frame went out. The stream wedges afterwards.
                    self.write_closed = true;
                    return Ok(buf.len());
                }
                _ => {}
            }
        }
        let n = self.inner.write(buf)?;
        for f in &self.faults {
            if let NetFault::HalfClose { at_write } = *f {
                if at_write == at {
                    self.injected += 1;
                    self.write_closed = true;
                }
            }
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead || self.write_closed {
            return Ok(());
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory transport: reads from a script, records writes.
    #[derive(Default)]
    struct Pipe {
        written: Vec<u8>,
    }

    impl Read for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            buf[0] = b'x';
            Ok(1)
        }
    }

    impl Write for Pipe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn plans_are_deterministic_per_conn() {
        let plan = NetFaultPlan::chaos(0xC0FFEE);
        for conn in 0..50u64 {
            assert_eq!(plan.faults_for_conn(conn), plan.faults_for_conn(conn));
        }
        // ...and not all identical across connections.
        let distinct: std::collections::HashSet<_> = (0..50u64)
            .map(|c| format!("{:?}", plan.faults_for_conn(c)))
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn chaos_profile_actually_schedules_faults() {
        let plan = NetFaultPlan::chaos(7);
        let total: usize = (0..200u64).map(|c| plan.faults_for_conn(c).len()).sum();
        assert!(total > 20, "only {total} faults over 200 connections");
        assert!(!plan.is_noop());
        assert!(NetFaultPlan::new().is_noop());
    }

    #[test]
    fn drop_kills_the_stream_both_ways() {
        let plan = NetFaultPlan::new().with(NetFault::Drop { at_write: 2 });
        let mut s = ChaosStream::new(Pipe::default(), &plan, 0);
        assert!(s.write(b"one\n").is_ok());
        let e = s.write(b"two\n").unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::BrokenPipe);
        let e = s.read(&mut [0u8; 4]).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(s.injected(), 1);
        assert_eq!(s.get_ref().written, b"one\n");
    }

    #[test]
    fn half_close_keeps_the_read_side() {
        let plan = NetFaultPlan::new().with(NetFault::HalfClose { at_write: 1 });
        let mut s = ChaosStream::new(Pipe::default(), &plan, 0);
        assert!(s.write(b"one\n").is_ok()); // the closing write succeeds
        assert!(s.write(b"two\n").is_err());
        assert!(s.read(&mut [0u8; 4]).is_ok());
        assert_eq!(s.get_ref().written, b"one\n");
    }

    #[test]
    fn truncate_reports_success_but_delivers_a_prefix() {
        let plan = NetFaultPlan::new().with(NetFault::TruncateWrite {
            at_write: 1,
            keep_bytes: 3,
        });
        let mut s = ChaosStream::new(Pipe::default(), &plan, 0);
        assert_eq!(s.write(b"incr hits 1\n").unwrap(), 12);
        assert_eq!(s.get_ref().written, b"inc");
        assert!(s.write(b"again\n").is_err());
    }

    #[test]
    fn stall_read_delivers_after_the_window() {
        let plan = NetFaultPlan::new().with(NetFault::StallRead {
            at_read: 1,
            micros: 200,
        });
        let mut s = ChaosStream::new(Pipe::default(), &plan, 0);
        let t0 = std::time::Instant::now();
        assert_eq!(s.read(&mut [0u8; 1]).unwrap(), 1);
        assert!(t0.elapsed() >= Duration::from_micros(200));
        assert_eq!(s.injected(), 1);
    }

    #[test]
    fn passthrough_injects_nothing() {
        let mut s = ChaosStream::passthrough(Pipe::default());
        for _ in 0..32 {
            assert_eq!(s.write(b"line\n").unwrap(), 5);
            assert_eq!(s.read(&mut [0u8; 1]).unwrap(), 1);
        }
        assert_eq!(s.injected(), 0);
    }
}
