//! Request-lifecycle spans: one record per served request, stamped with
//! logical ticks from the server's global tick counter — the same clock
//! the linearizability audit log uses, so span timelines and op logs
//! line up exactly.
//!
//! A span follows the connection through the ladder: `accept` (gate
//! passed) → `enqueue` (admitted to the bounded queue) → `dequeue` (a
//! worker picked the connection up) → `execute` (request handling
//! began) → `ack` (response write finished). Each span also carries the
//! degradation rung the request was served at, whether the answer came
//! from the degraded tier, and how many chaos faults had fired on the
//! connection by ack time.
//!
//! Export mirrors `ruo_metrics::trace`: a JSONL dump with a schema
//! header (`ruo-serve-span-v1`) and a Chrome `trace_event` JSON
//! document loadable in `chrome://tracing` / Perfetto, with one lane
//! per worker.

use std::fmt::Write as _;

use ruo_metrics::json_escape;

/// Schema tag on the span JSONL header line.
pub const SPAN_SCHEMA: &str = "ruo-serve-span-v1";

/// The degradation rung a request was served at (the ladder in
/// `server`'s module docs). Shed connections never reach a worker, so
/// rung 2 does not appear on spans; it is visible in the health gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanRung {
    /// Exact tier: queue shallow, every op exact.
    Healthy,
    /// Degraded tier active: queue at or past `degrade_depth`.
    Degraded,
    /// Served during drain (the request was already in flight).
    Draining,
}

impl SpanRung {
    /// Wire/JSON name of the rung.
    pub fn name(self) -> &'static str {
        match self {
            SpanRung::Healthy => "healthy",
            SpanRung::Degraded => "degraded",
            SpanRung::Draining => "draining",
        }
    }
}

/// One request's lifecycle, in global server ticks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSpan {
    /// Connection the request arrived on.
    pub conn_id: u64,
    /// Request index within the connection (0-based).
    pub seq: u64,
    /// Worker (= `ProcessId`) that served it.
    pub worker: usize,
    /// Request verb (`incr`, `read`, …; `invalid` if the line did not
    /// parse).
    pub verb: String,
    /// Tick at which the acceptor admitted the connection.
    pub accept_tick: u64,
    /// Tick at which the connection entered the worker queue.
    pub enqueue_tick: u64,
    /// Tick at which a worker popped the connection.
    pub dequeue_tick: u64,
    /// Tick at which request handling began.
    pub execute_tick: u64,
    /// Tick after the response write finished (or failed).
    pub ack_tick: u64,
    /// Degradation rung the request was served at.
    pub rung: SpanRung,
    /// Whether the answer actually came from the degraded tier.
    pub degraded: bool,
    /// Chaos faults injected on this connection so far (cumulative at
    /// ack time).
    pub chaos_injected: u64,
    /// `ok`, `pong`, `err <code>`, or `write_failed`.
    pub outcome: String,
}

impl RequestSpan {
    fn jsonl_line(&self) -> String {
        format!(
            "{{\"type\":\"span\",\"conn\":{},\"seq\":{},\"worker\":{},\"verb\":\"{}\",\
             \"accept\":{},\"enqueue\":{},\"dequeue\":{},\"execute\":{},\"ack\":{},\
             \"rung\":\"{}\",\"degraded\":{},\"chaos_injected\":{},\"outcome\":\"{}\"}}",
            self.conn_id,
            self.seq,
            self.worker,
            json_escape(&self.verb),
            self.accept_tick,
            self.enqueue_tick,
            self.dequeue_tick,
            self.execute_tick,
            self.ack_tick,
            self.rung.name(),
            self.degraded,
            self.chaos_injected,
            json_escape(&self.outcome),
        )
    }
}

/// Serializes spans as JSONL: a schema header, then one object per
/// span.
pub fn spans_to_jsonl(spans: &[RequestSpan]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"schema\":\"{SPAN_SCHEMA}\",\"spans\":{}}}",
        spans.len()
    );
    for s in spans {
        let _ = writeln!(out, "{}", s.jsonl_line());
    }
    out
}

/// Serializes spans as Chrome `trace_event` JSON: one complete (`"X"`)
/// event per span on the serving worker's lane, `ts`/`dur` in global
/// server ticks (rendered as µs by the viewer).
pub fn spans_to_chrome_trace(spans: &[RequestSpan]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dur = s.ack_tick.saturating_sub(s.execute_tick).max(1);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":0,\"tid\":{},\"args\":{{\"conn\":{},\"seq\":{},\"rung\":\"{}\",\
             \"degraded\":{},\"chaos_injected\":{},\"queue_wait\":{},\"outcome\":\"{}\"}}}}",
            json_escape(&s.verb),
            s.execute_tick,
            dur,
            s.worker,
            s.conn_id,
            s.seq,
            s.rung.name(),
            s.degraded,
            s.chaos_injected,
            s.dequeue_tick.saturating_sub(s.enqueue_tick),
            json_escape(&s.outcome),
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64) -> RequestSpan {
        RequestSpan {
            conn_id: 3,
            seq,
            worker: 1,
            verb: "incr".into(),
            accept_tick: 10,
            enqueue_tick: 11,
            dequeue_tick: 14,
            execute_tick: 15 + seq,
            ack_tick: 17 + seq,
            rung: SpanRung::Healthy,
            degraded: false,
            chaos_injected: 0,
            outcome: "ok".into(),
        }
    }

    #[test]
    fn jsonl_has_header_and_one_line_per_span() {
        let dump = spans_to_jsonl(&[span(0), span(1)]);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema\":\"ruo-serve-span-v1\""));
        assert!(lines[0].contains("\"spans\":2"));
        assert!(lines[1].contains("\"verb\":\"incr\""));
        assert!(lines[2].contains("\"seq\":1"));
        // Every line is parseable JSON (via the scenario codec).
        for line in lines {
            ruo_scenario::json::Json::parse(line).expect("valid JSON line");
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_event_per_span() {
        let doc = spans_to_chrome_trace(&[span(0), span(1)]);
        let parsed = ruo_scenario::json::Json::parse(&doc).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(|p| p.as_str()), Some("X"));
        assert_eq!(events[0].get("tid").and_then(|t| t.as_u64()), Some(1));
        // Zero-length spans get a visible minimum duration.
        let mut z = span(0);
        z.ack_tick = z.execute_tick;
        let doc = spans_to_chrome_trace(&[z]);
        let parsed = ruo_scenario::json::Json::parse(&doc).unwrap();
        let ev = &parsed.get("traceEvents").unwrap().as_arr().unwrap()[0];
        assert_eq!(ev.get("dur").and_then(|d| d.as_u64()), Some(1));
    }

    #[test]
    fn escaping_keeps_hostile_verbs_valid() {
        let mut s = span(0);
        s.verb = "we\"ird\\verb".into();
        s.outcome = "err parse \"quoted\"".into();
        for line in spans_to_jsonl(&[s.clone()]).lines() {
            ruo_scenario::json::Json::parse(line).expect("valid JSON line");
        }
        ruo_scenario::json::Json::parse(&spans_to_chrome_trace(&[s])).expect("valid JSON");
    }
}
