//! # ruo-serve — the objects behind a fault-tolerant service layer
//!
//! A dependency-free, std-only TCP server exposing [`ruo_scenario`]
//! registry objects — counters, max registers, snapshots — as named
//! endpoints over a small line protocol, built for hostile networks:
//!
//! * [`proto`] — the wire protocol (`incr` / `write_max` / `update` /
//!   `read` / `scan` / `metrics` / `ping`), strict parse, never panics.
//! * [`chaos`] — [`NetFaultPlan`]: seedable per-connection fault plans
//!   (drop, half-close, truncate, delay, stall) wrapping either side of
//!   the socket, modeled on `ruo_sim::FaultPlan`.
//! * [`server`] — acceptor + worker pool with a load-shedding admission
//!   gate, queue-age deadlines, an idempotency window for retried
//!   updates, a degraded read tier under overload, and a drain sequence
//!   that never loses an acknowledged op.
//! * [`client`] — per-attempt timeouts, reconnects, exponential
//!   SplitMix64-jittered backoff, and idempotency tokens reused across
//!   retries.
//! * [`mod@audit`] — replays the server's per-object op log through
//!   `check_interval`, so the retry/chaos semantics are verified
//!   against the sequential specs, not assumed.
//! * [`mod@span`] — request-lifecycle spans (accept → enqueue → dequeue
//!   → execute → ack, in global server ticks) with degradation-rung and
//!   chaos annotations, exported as JSONL and Chrome `trace_event`
//!   JSON. Enabled with [`ServeConfig::spans`]; the `metrics` wire dump
//!   itself is served from a `ruo_metrics::MetricsRegistry` snapshot,
//!   tagged `ruo-telem-v1`.
//!
//! ```no_run
//! use ruo_serve::{Client, ClientConfig, ObjectDef, ServeConfig, Server};
//!
//! let server = Server::start(
//!     ServeConfig::default(),
//!     &[ObjectDef::counter("hits", "farray")],
//! )
//! .unwrap();
//! let mut client = Client::new(ClientConfig::new(server.addr()), 0);
//! client.incr("hits", 1).unwrap();
//! assert_eq!(client.read("hits").unwrap().value, 1);
//! let summary = server.shutdown();
//! assert!(summary.audit().ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod audit;
pub mod chaos;
pub mod client;
pub mod proto;
pub mod server;
pub mod span;

pub use audit::{audit, AuditReport, DegradedRead, LoggedOp, ObjectAudit, ObjectLog};
pub use chaos::{ChaosStream, NetFault, NetFaultPlan};
pub use client::{Client, ClientConfig, ClientError, ClientStats, ReadResult, ScanResult};
pub use proto::{ErrCode, ProtoError, Request, Response, MAX_LINE_BYTES};
pub use server::{ObjectDef, ServeConfig, ServeSummary, Server, StartError};
pub use span::{spans_to_chrome_trace, spans_to_jsonl, RequestSpan, SpanRung, SPAN_SCHEMA};
