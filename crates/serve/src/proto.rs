//! The wire protocol: newline-terminated ASCII request/response lines.
//!
//! Requests:
//!
//! ```text
//! incr <obj> <k> [<token>]     k increments; token makes the request idempotent
//! write_max <obj> <v>          WriteMax(v)
//! update <obj> <v>             single-writer snapshot segment update
//! read <obj>                   counter read / max-register read
//! scan <obj>                   snapshot scan
//! metrics                      health-gauge dump
//! ping                         liveness probe
//! ```
//!
//! Responses:
//!
//! ```text
//! ok                           update acknowledged
//! ok <v>                       exact read
//! ok degraded <v>              degraded-tier read
//! ok <v1>,<v2>,...             exact scan
//! ok degraded <v1>,<v2>,...    degraded-tier scan
//! ok ruo-telem-v1 <k>=<v> ...  metrics dump (versioned, ascending keys)
//! pong                         ping reply
//! err <code>[ <detail>]        see [`ErrCode`]
//! ```
//!
//! The metrics dump is schema-tagged with [`ruo_metrics::TELEM_SCHEMA`]
//! so consumers can detect format drift: keys must be strictly
//! ascending and unique, values canonical decimals, and an untagged
//! `k=v` payload is rejected rather than guessed at. A bare
//! `ok ruo-telem-v1` is an empty dump.
//!
//! Both directions parse with [`Request::parse`] / [`Response::parse`]
//! and encode with `encode` (no trailing newline — framing is the
//! transport's job). Parsing never panics: anything malformed — the
//! chaos layer truncates frames mid-line — comes back as a
//! [`ProtoError`].

use std::fmt;

use ruo_metrics::TELEM_SCHEMA;

/// Longest accepted line, in bytes. A peer that streams more than this
/// without a newline is misbehaving (or chaos glued frames together);
/// the read path drops the connection rather than buffer unboundedly.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A malformed request or response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// What was wrong with the line.
    pub detail: String,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.detail)
    }
}

impl std::error::Error for ProtoError {}

fn err(detail: impl Into<String>) -> ProtoError {
    ProtoError {
        detail: detail.into(),
    }
}

/// An object name or idempotency token: 1..=64 bytes of
/// `[A-Za-z0-9_.:-]`. Rejecting whitespace keeps the line grammar
/// unambiguous.
fn valid_ident(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b':' | b'-'))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, ProtoError> {
    // `u64::from_str` accepts a leading `+`; the wire format does not,
    // nor leading zeros — every accepted line is canonical.
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(err(format!("bad {what} {s:?}")));
    }
    if s.len() > 1 && s.starts_with('0') {
        return Err(err(format!("leading zero in {what} {s:?}")));
    }
    s.parse::<u64>()
        .map_err(|_| err(format!("{what} out of range: {s:?}")))
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `k` increments of a counter, optionally idempotent under `token`.
    Incr {
        /// Target object name.
        obj: String,
        /// Number of increments (must be ≥ 1).
        k: u64,
        /// Idempotency token; retries reusing it apply exactly once.
        token: Option<String>,
    },
    /// `WriteMax(v)` on a max register.
    WriteMax {
        /// Target object name.
        obj: String,
        /// Value to write.
        v: u64,
    },
    /// Update the serving worker's segment of a snapshot.
    Update {
        /// Target object name.
        obj: String,
        /// Value to store.
        v: u64,
    },
    /// Read a counter or max register.
    Read {
        /// Target object name.
        obj: String,
    },
    /// Scan a snapshot.
    Scan {
        /// Target object name.
        obj: String,
    },
    /// Dump the server's health gauges.
    Metrics,
    /// Liveness probe.
    Ping,
}

impl Request {
    /// Encodes the request as one line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Incr {
                obj,
                k,
                token: None,
            } => format!("incr {obj} {k}"),
            Request::Incr {
                obj,
                k,
                token: Some(t),
            } => format!("incr {obj} {k} {t}"),
            Request::WriteMax { obj, v } => format!("write_max {obj} {v}"),
            Request::Update { obj, v } => format!("update {obj} {v}"),
            Request::Read { obj } => format!("read {obj}"),
            Request::Scan { obj } => format!("scan {obj}"),
            Request::Metrics => "metrics".to_string(),
            Request::Ping => "ping".to_string(),
        }
    }

    /// Parses one request line (without its newline).
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        if line.len() > MAX_LINE_BYTES {
            return Err(err("line too long"));
        }
        let mut parts = line.split(' ');
        let verb = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        // `split(' ')` yields empty strings for doubled spaces; reject
        // them so encode∘parse is an exact inverse.
        if rest.iter().any(|p| p.is_empty()) {
            return Err(err("empty field"));
        }
        let obj_of = |s: &str| -> Result<String, ProtoError> {
            if valid_ident(s) {
                Ok(s.to_string())
            } else {
                Err(err(format!("bad object name {s:?}")))
            }
        };
        match (verb, rest.as_slice()) {
            ("incr", [obj, k]) => {
                let k = parse_u64(k, "count")?;
                if k == 0 {
                    return Err(err("incr count must be >= 1"));
                }
                Ok(Request::Incr {
                    obj: obj_of(obj)?,
                    k,
                    token: None,
                })
            }
            ("incr", [obj, k, token]) => {
                let k = parse_u64(k, "count")?;
                if k == 0 {
                    return Err(err("incr count must be >= 1"));
                }
                if !valid_ident(token) {
                    return Err(err(format!("bad token {token:?}")));
                }
                Ok(Request::Incr {
                    obj: obj_of(obj)?,
                    k,
                    token: Some(token.to_string()),
                })
            }
            ("write_max", [obj, v]) => Ok(Request::WriteMax {
                obj: obj_of(obj)?,
                v: parse_u64(v, "value")?,
            }),
            ("update", [obj, v]) => Ok(Request::Update {
                obj: obj_of(obj)?,
                v: parse_u64(v, "value")?,
            }),
            ("read", [obj]) => Ok(Request::Read { obj: obj_of(obj)? }),
            ("scan", [obj]) => Ok(Request::Scan { obj: obj_of(obj)? }),
            ("metrics", []) => Ok(Request::Metrics),
            ("ping", []) => Ok(Request::Ping),
            ("", _) => Err(err("empty request")),
            _ => Err(err(format!("bad request {line:?}"))),
        }
    }
}

/// Server error codes a client may retry on (or not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The admission gate refused the connection; retry after backoff.
    Overload,
    /// The request aged past its deadline while queued; retry.
    Deadline,
    /// The server is draining; retry elsewhere / later.
    Closed,
    /// No object with that name is being served. Not retryable.
    NoObject,
    /// The request line did not parse. Not retryable.
    Parse,
    /// The operation does not apply to that object's family. Not
    /// retryable.
    Unsupported,
}

impl ErrCode {
    /// Wire name of the code.
    pub fn name(self) -> &'static str {
        match self {
            ErrCode::Overload => "overload",
            ErrCode::Deadline => "deadline",
            ErrCode::Closed => "closed",
            ErrCode::NoObject => "no_object",
            ErrCode::Parse => "parse",
            ErrCode::Unsupported => "unsupported",
        }
    }

    /// Inverse of [`ErrCode::name`].
    pub fn parse(s: &str) -> Option<ErrCode> {
        Some(match s {
            "overload" => ErrCode::Overload,
            "deadline" => ErrCode::Deadline,
            "closed" => ErrCode::Closed,
            "no_object" => ErrCode::NoObject,
            "parse" => ErrCode::Parse,
            "unsupported" => ErrCode::Unsupported,
            _ => return None,
        })
    }

    /// Whether a client should retry the same request after this code.
    /// Transient conditions (overload, queue deadline, drain) are
    /// retryable; semantic errors are not.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrCode::Overload | ErrCode::Deadline | ErrCode::Closed
        )
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Update acknowledged.
    Ok,
    /// Read result; `degraded` marks the cheap overload tier.
    Value {
        /// The value read.
        v: u64,
        /// Served from the degraded tier instead of the exact object.
        degraded: bool,
    },
    /// Scan result; `degraded` marks the cheap overload tier.
    Vector {
        /// Segment values.
        vs: Vec<u64>,
        /// Served from the degraded tier instead of the exact object.
        degraded: bool,
    },
    /// Health-gauge dump, in server-defined order.
    Metrics(Vec<(String, u64)>),
    /// Ping reply.
    Pong,
    /// An error.
    Err {
        /// The error code.
        code: ErrCode,
        /// Optional human-readable detail (single line, may contain
        /// spaces).
        detail: String,
    },
}

impl Response {
    /// Encodes the response as one line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Response::Ok => "ok".to_string(),
            Response::Value { v, degraded: false } => format!("ok {v}"),
            Response::Value { v, degraded: true } => format!("ok degraded {v}"),
            Response::Vector { vs, degraded } => {
                let body = vs
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                if *degraded {
                    format!("ok degraded {body}")
                } else {
                    format!("ok {body}")
                }
            }
            Response::Metrics(pairs) => {
                if pairs.is_empty() {
                    return format!("ok {TELEM_SCHEMA}");
                }
                let body = pairs
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                format!("ok {TELEM_SCHEMA} {body}")
            }
            Response::Pong => "pong".to_string(),
            Response::Err { code, detail } => {
                if detail.is_empty() {
                    format!("err {}", code.name())
                } else {
                    format!("err {} {}", code.name(), detail)
                }
            }
        }
    }

    /// Parses one response line (without its newline).
    ///
    /// The `ok …` payload grammar is ambiguous in isolation (`ok 5` is a
    /// value; `ok 5` could be a one-segment scan), so the client decodes
    /// by shape: a bare integer is [`Response::Value`], a comma list is
    /// [`Response::Vector`], and a payload opening with the
    /// [`TELEM_SCHEMA`] tag is [`Response::Metrics`] (strictly ascending
    /// unique keys; untagged `k=v` payloads are rejected). Callers that
    /// issued `scan` use [`Response::into_vector`] to coerce a
    /// one-segment result.
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        if line.len() > MAX_LINE_BYTES {
            return Err(err("line too long"));
        }
        if line == "ok" {
            return Ok(Response::Ok);
        }
        if line == "pong" {
            return Ok(Response::Pong);
        }
        if let Some(rest) = line.strip_prefix("err ") {
            let (code, detail) = match rest.split_once(' ') {
                Some((c, d)) => (c, d.to_string()),
                None => (rest, String::new()),
            };
            let code = ErrCode::parse(code).ok_or_else(|| err(format!("bad err code {code:?}")))?;
            if detail.contains('\n') {
                return Err(err("multi-line detail"));
            }
            return Ok(Response::Err { code, detail });
        }
        let Some(rest) = line.strip_prefix("ok ") else {
            return Err(err(format!("bad response {line:?}")));
        };
        let (degraded, payload) = match rest.strip_prefix("degraded ") {
            Some(p) => (true, p),
            None => (false, rest),
        };
        if payload.is_empty() {
            return Err(err("empty payload"));
        }
        if let Some(tagged) = payload.strip_prefix(TELEM_SCHEMA) {
            if degraded {
                return Err(err("metrics cannot be degraded"));
            }
            if tagged.is_empty() {
                return Ok(Response::Metrics(Vec::new()));
            }
            let Some(body) = tagged.strip_prefix(' ') else {
                return Err(err(format!("bad metrics tag in {payload:?}")));
            };
            if body.is_empty() {
                return Err(err("empty metrics body"));
            }
            let mut pairs: Vec<(String, u64)> = Vec::new();
            for part in body.split(' ') {
                let (k, v) = part
                    .split_once('=')
                    .ok_or_else(|| err(format!("bad metrics pair {part:?}")))?;
                if !valid_ident(k) {
                    return Err(err(format!("bad metrics key {k:?}")));
                }
                if let Some((prev, _)) = pairs.last() {
                    if k <= prev.as_str() {
                        return Err(err(format!("metrics keys not ascending at {k:?}")));
                    }
                }
                pairs.push((k.to_string(), parse_u64(v, "metrics value")?));
            }
            return Ok(Response::Metrics(pairs));
        }
        if payload.contains('=') {
            return Err(err(format!(
                "unversioned metrics payload (expected {TELEM_SCHEMA} tag)"
            )));
        }
        if payload.contains(',') {
            let vs = payload
                .split(',')
                .map(|p| parse_u64(p, "segment"))
                .collect::<Result<Vec<u64>, _>>()?;
            return Ok(Response::Vector { vs, degraded });
        }
        if payload.contains(' ') {
            return Err(err(format!("bad payload {payload:?}")));
        }
        Ok(Response::Value {
            v: parse_u64(payload, "value")?,
            degraded,
        })
    }

    /// Coerces a value into a one-segment vector (a scan of a
    /// one-process snapshot is wire-identical to a value read).
    pub fn into_vector(self) -> Response {
        match self {
            Response::Value { v, degraded } => Response::Vector {
                vs: vec![v],
                degraded,
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_encode_parse_round_trips() {
        let cases = vec![
            Request::Incr {
                obj: "hits".into(),
                k: 1,
                token: None,
            },
            Request::Incr {
                obj: "hits".into(),
                k: 17,
                token: Some("c3:41".into()),
            },
            Request::WriteMax {
                obj: "peak".into(),
                v: u64::MAX,
            },
            Request::Update {
                obj: "segments".into(),
                v: 0,
            },
            Request::Read { obj: "hits".into() },
            Request::Scan {
                obj: "segments".into(),
            },
            Request::Metrics,
            Request::Ping,
        ];
        for req in cases {
            assert_eq!(Request::parse(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_encode_parse_round_trips() {
        let cases = vec![
            Response::Ok,
            Response::Pong,
            Response::Value {
                v: 0,
                degraded: false,
            },
            Response::Value {
                v: 9000,
                degraded: true,
            },
            Response::Vector {
                vs: vec![1, 2, 3],
                degraded: false,
            },
            Response::Vector {
                vs: vec![0, 0],
                degraded: true,
            },
            Response::Metrics(vec![("served".into(), 12), ("shed".into(), 0)]),
            Response::Metrics(Vec::new()),
            Response::Err {
                code: ErrCode::Overload,
                detail: String::new(),
            },
            Response::Err {
                code: ErrCode::NoObject,
                detail: "no such object hits".into(),
            },
        ];
        for resp in cases {
            assert_eq!(Response::parse(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        for line in [
            "",
            " ",
            "incr",
            "incr hits",
            "incr hits 0",
            "incr hits -1",
            "incr hits 1 tok en",
            "incr hits 99999999999999999999999",
            "incr hits 01",
            "incr  hits 1",
            "read",
            "read a b",
            "read ob j",
            "read \u{2603}",
            "write_max peak",
            "write_max peak +3",
            "metrics now",
            "png",
            "incr hits 1 ",
        ] {
            assert!(Request::parse(line).is_err(), "accepted {line:?}");
        }
    }

    #[test]
    fn malformed_responses_are_errors_not_panics() {
        for line in [
            "",
            "ok ",
            "okay",
            "ok degraded",
            "ok degraded ",
            "ok 1 2",
            "ok 1,,2",
            "ok 1,2,",
            "ok a=b",
            "ok served=1 shed",
            "ok degraded served=1",
            "ok served=1 shed=0",
            "ok ruo-telem-v1 ",
            "ok ruo-telem-v1  a=1",
            "ok ruo-telem-v1 a",
            "ok ruo-telem-v1 a=01",
            "ok ruo-telem-v1 a=+1",
            "ok ruo-telem-v1 shed=1 served=2",
            "ok ruo-telem-v1 a=1 a=2",
            "ok ruo-telem-v1 a=1 b",
            "ok ruo-telem-v1x",
            "ok ruo-telem-v2 a=1",
            "ok degraded ruo-telem-v1",
            "ok degraded ruo-telem-v1 a=1",
            "err",
            "err bogus",
            "pong pong",
        ] {
            assert!(Response::parse(line).is_err(), "accepted {line:?}");
        }
    }

    #[test]
    fn metrics_wire_format_is_versioned_and_ordered() {
        // The tag is pinned: a format change must bump the schema name.
        assert_eq!(TELEM_SCHEMA, "ruo-telem-v1");
        let resp = Response::Metrics(vec![("served".into(), 12), ("shed".into(), 0)]);
        assert_eq!(resp.encode(), "ok ruo-telem-v1 served=12 shed=0");
        assert_eq!(Response::Metrics(Vec::new()).encode(), "ok ruo-telem-v1");
        assert_eq!(
            Response::parse("ok ruo-telem-v1").unwrap(),
            Response::Metrics(Vec::new())
        );
        // Ascending keys accepted, including a single pair.
        assert_eq!(
            Response::parse("ok ruo-telem-v1 served=3").unwrap(),
            Response::Metrics(vec![("served".into(), 3)])
        );
    }

    #[test]
    fn one_segment_scan_coerces() {
        let r = Response::parse("ok 7").unwrap().into_vector();
        assert_eq!(
            r,
            Response::Vector {
                vs: vec![7],
                degraded: false
            }
        );
    }

    #[test]
    fn err_codes_round_trip_and_classify() {
        for code in [
            ErrCode::Overload,
            ErrCode::Deadline,
            ErrCode::Closed,
            ErrCode::NoObject,
            ErrCode::Parse,
            ErrCode::Unsupported,
        ] {
            assert_eq!(ErrCode::parse(code.name()), Some(code));
        }
        assert!(ErrCode::Overload.retryable());
        assert!(ErrCode::Deadline.retryable());
        assert!(ErrCode::Closed.retryable());
        assert!(!ErrCode::NoObject.retryable());
        assert!(!ErrCode::Parse.retryable());
        assert!(!ErrCode::Unsupported.retryable());
    }
}
