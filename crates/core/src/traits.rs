//! The three object-family traits.

use ruo_sim::ProcessId;

/// A max register: `ReadMax` returns the largest value previously
/// written by `WriteMax`.
///
/// A fresh register reads `0`; `write_max(_, 0)` is therefore always a
/// semantic no-op. Implementations shared by `N` processes require
/// `pid.index() < N`, and each `pid` must be used by at most one thread
/// at a time (operations of one process are sequential, as in the model).
pub trait MaxRegister: Send + Sync {
    /// Writes `v`; after this call `read_max() >= v`.
    ///
    /// # Panics
    ///
    /// May panic if `pid` is out of range, `v` exceeds
    /// [`crate::value::MAX_VALUE`], or — for bounded implementations —
    /// `v` exceeds the register's bound.
    fn write_max(&self, pid: ProcessId, v: u64);

    /// Returns the largest value written so far (`0` if none).
    fn read_max(&self) -> u64;
}

/// A counter: `read` returns the number of `increment`s linearized
/// before it.
///
/// Same per-process usage rules as [`MaxRegister`]. Restricted-use
/// implementations support only a bounded number of increments.
pub trait Counter: Send + Sync {
    /// Adds one to the counter.
    ///
    /// # Panics
    ///
    /// May panic if `pid` is out of range or a restricted-use bound on
    /// the number of increments is exceeded.
    fn increment(&self, pid: ProcessId);

    /// Returns the current count.
    fn read(&self) -> u64;
}

/// A single-writer atomic snapshot: an array of `N` segments where
/// process `i` updates only segment `i`, and `scan` returns an
/// atomic view of all segments.
pub trait Snapshot: Send + Sync {
    /// Number of segments.
    fn n(&self) -> usize;

    /// Sets segment `pid.index()` to `v`.
    ///
    /// # Panics
    ///
    /// May panic if `pid` is out of range, `v` exceeds the
    /// implementation's value width, or a restricted-use bound on the
    /// number of updates is exceeded.
    fn update(&self, pid: ProcessId, v: u64);

    /// Returns an atomic view of all segments (all `0` initially).
    fn scan(&self) -> Vec<u64>;
}
