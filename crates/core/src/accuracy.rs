//! Accuracy classes — the relaxation dimension of ISSUE 9.
//!
//! The source paper's tradeoffs (and every pre-PR-9 implementation in
//! this crate) assume *exact* reads. Hendler–Khattabi–Milani
//! (arXiv 2104.09902) relax the read contract to a bounded
//! multiplicative error and beat the exact lower bounds; the
//! [`ApproxCounter`](crate::counter::ApproxCounter) and
//! [`ApproxMaxRegister`](crate::maxreg::ApproxMaxRegister) faces carry
//! that relaxation. [`AccuracyClass`] names the *kind* of guarantee in
//! registry capability metadata, exactly as
//! [`CounterMode`](crate::counter::CounterMode) names the
//! contended-write strategy; the factor `k` itself is a constructor
//! parameter, not part of the class.

/// The accuracy guarantee a relaxed implementation provides, as used in
/// registry capability metadata and scenario tables. Exact faces carry
/// no class at all (`accuracy: None` in the registry).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccuracyClass {
    /// k-multiplicative accuracy: a read returning `v` against true
    /// value `V` guarantees `V / k ≤ v ≤ V` — never an overestimate,
    /// an underestimate by at most the configured factor `k`. At
    /// `k = 1` this is exactness.
    KMultiplicative,
}

impl AccuracyClass {
    /// The schema name (`"k_multiplicative"`), as used in registry
    /// capability metadata and scenario accuracy sections.
    pub fn name(self) -> &'static str {
        match self {
            AccuracyClass::KMultiplicative => "k_multiplicative",
        }
    }

    /// Parses a schema name; inverse of [`AccuracyClass::name`].
    pub fn parse(s: &str) -> Option<AccuracyClass> {
        match s {
            "k_multiplicative" => Some(AccuracyClass::KMultiplicative),
            _ => None,
        }
    }

    /// All classes, in schema order.
    pub fn all() -> [AccuracyClass; 1] {
        [AccuracyClass::KMultiplicative]
    }
}

impl std::fmt::Display for AccuracyClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for class in AccuracyClass::all() {
            assert_eq!(AccuracyClass::parse(class.name()), Some(class));
            assert_eq!(format!("{class}"), class.name());
        }
        assert_eq!(AccuracyClass::parse("nope"), None);
    }
}
