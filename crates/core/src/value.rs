//! Value encoding shared by all implementations.
//!
//! Public APIs speak `u64`; the simulator and the atomics layer store
//! signed words ([`ruo_sim::Word`]) where [`ruo_sim::NEG_INF`] encodes
//! the `-∞` initial value of Algorithm A's tree nodes. A fresh max
//! register reads as `0`, so `WriteMax(0)` is always a semantic no-op —
//! which is why value leaves in the B1 subtree exist only for `v ≥ 1`.

use ruo_sim::{Word, NEG_INF};

/// Largest value accepted by the max registers (`i64::MAX`), so every
/// value round-trips through a [`Word`].
pub const MAX_VALUE: u64 = i64::MAX as u64;

/// Encodes a public value as a word.
///
/// # Panics
///
/// Panics if `v` exceeds [`MAX_VALUE`].
#[inline]
pub fn to_word(v: u64) -> Word {
    assert!(v <= MAX_VALUE, "value {v} exceeds MAX_VALUE");
    v as Word
}

/// Decodes a node word as a public value, mapping the `-∞` sentinel (and
/// any negative sentinel) to `0`.
#[inline]
pub fn from_word(w: Word) -> u64 {
    if w < 0 {
        0
    } else {
        w as u64
    }
}

/// Whether a word is the `-∞` sentinel.
#[inline]
pub fn is_neg_inf(w: Word) -> bool {
    w == NEG_INF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        for v in [0u64, 1, 42, MAX_VALUE] {
            assert_eq!(from_word(to_word(v)), v);
        }
    }

    #[test]
    fn neg_inf_decodes_to_zero() {
        assert_eq!(from_word(NEG_INF), 0);
        assert!(is_neg_inf(NEG_INF));
        assert!(!is_neg_inf(0));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_VALUE")]
    fn oversized_value_is_rejected() {
        let _ = to_word(u64::MAX);
    }
}
