//! # ruo-core — restricted-use concurrent objects
//!
//! From-scratch implementations of the three object families studied in
//! *"Complexity Tradeoffs for Read and Update Operations"* (Hendler &
//! Khait, PODC 2014):
//!
//! * **Max registers** — [`maxreg::TreeMaxRegister`] is the paper's
//!   Algorithm A: wait-free, linearizable, `O(1)`-step `ReadMax` and
//!   `O(min(log N, log v))`-step `WriteMax(v)`, built from `read`/`write`/
//!   `CAS`. [`maxreg::AacMaxRegister`] is the Aspnes–Attiya–Censor
//!   register from reads and writes only (`O(log M)` both operations) —
//!   the prior state of the art the paper improves on for reads.
//! * **Counters** — [`counter::FArrayCounter`] (Jayanti-style `O(1)` read,
//!   `O(log N)` increment, CAS variant), [`counter::AacCounter`]
//!   (read/write only, `O(log N)` read, `O(log N · log M)` increment), and
//!   hardware baselines.
//! * **Snapshots** — [`snapshot::DoubleCollectSnapshot`] (obstruction-free),
//!   [`snapshot::AfekSnapshot`] (wait-free with helping), and
//!   [`snapshot::PathCopySnapshot`] (restricted-use, `O(1)` consistent
//!   view acquisition).
//!
//! Every algorithm exists in two forms: a real concurrent implementation
//! on `std::sync::atomic` (this crate's public structs), and a
//! step-machine implementation against the [`ruo_sim`] simulator (the
//! `sim` submodules), used for exact step counting and for the mechanized
//! lower-bound constructions in `ruo-lowerbound`.
//!
//! ## Quick start
//!
//! ```
//! use ruo_core::maxreg::TreeMaxRegister;
//! use ruo_core::MaxRegister;
//! use ruo_sim::ProcessId;
//!
//! let reg = TreeMaxRegister::new(4); // shared by 4 processes
//! reg.write_max(ProcessId(0), 17);
//! reg.write_max(ProcessId(1), 9);
//! assert_eq!(reg.read_max(), 17);
//! ```

#![warn(missing_docs, missing_debug_implementations)]

pub mod accuracy;
pub mod b1tree;
pub mod counter;
pub mod farray;
pub mod farray_sim;
pub mod maxreg;
pub mod pad;
pub mod reduction;
pub mod shape;
pub mod snapshot;
mod traits;
pub mod value;

pub use traits::{Counter, MaxRegister, Snapshot};
