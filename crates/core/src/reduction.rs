//! Corollary 1's reduction: a counter from a single-writer snapshot.
//!
//! "To perform a `CounterIncrement`, process `pᵢ` increments the value
//! of the `i`-th component by performing a single `Update` operation. To
//! read the counter, a process performs a single `Scan` operation and
//! returns the sum of all components." — Section 3.
//!
//! Each process knows its own count (its segment is single-writer), so
//! the increment needs no scan: a process-local counter feeds the
//! `Update` operand. This adapter is how the snapshot lower bound is
//! transported to counters (and how the test suite cross-checks snapshot
//! implementations against counter semantics).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use ruo_sim::ProcessId;

use crate::traits::{Counter, Snapshot};

/// A [`Counter`] built from any [`Snapshot`] per Corollary 1.
///
/// ```
/// use ruo_core::reduction::CounterFromSnapshot;
/// use ruo_core::snapshot::DoubleCollectSnapshot;
/// use ruo_core::Counter;
/// use ruo_sim::ProcessId;
///
/// let counter = CounterFromSnapshot::new(DoubleCollectSnapshot::new(4));
/// counter.increment(ProcessId(0));
/// counter.increment(ProcessId(2));
/// assert_eq!(counter.read(), 2);
/// ```
pub struct CounterFromSnapshot<S> {
    snapshot: S,
    /// Process-local increment counts (each slot written only by its
    /// owner — this is the process's private state, not shared memory).
    local: Box<[AtomicU64]>,
}

impl<S: Snapshot> fmt::Debug for CounterFromSnapshot<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CounterFromSnapshot")
            .field("n", &self.snapshot.n())
            .finish()
    }
}

impl<S: Snapshot> CounterFromSnapshot<S> {
    /// Wraps a snapshot as a counter.
    pub fn new(snapshot: S) -> Self {
        let local = (0..snapshot.n()).map(|_| AtomicU64::new(0)).collect();
        CounterFromSnapshot { snapshot, local }
    }

    /// The underlying snapshot.
    pub fn snapshot(&self) -> &S {
        &self.snapshot
    }
}

impl<S: Snapshot> Counter for CounterFromSnapshot<S> {
    fn increment(&self, pid: ProcessId) {
        let c = self.local[pid.index()].fetch_add(1, Ordering::Relaxed) + 1;
        self.snapshot.update(pid, c);
    }

    fn read(&self) -> u64 {
        self.snapshot.scan().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{AfekSnapshot, DoubleCollectSnapshot, PathCopySnapshot};
    use std::sync::Arc;

    #[test]
    fn counts_via_double_collect() {
        let c = CounterFromSnapshot::new(DoubleCollectSnapshot::new(3));
        for i in 0..6usize {
            c.increment(ProcessId(i % 3));
        }
        assert_eq!(c.read(), 6);
    }

    #[test]
    fn counts_via_afek() {
        let c = CounterFromSnapshot::new(AfekSnapshot::new(2));
        c.increment(ProcessId(0));
        c.increment(ProcessId(1));
        c.increment(ProcessId(1));
        assert_eq!(c.read(), 3);
    }

    #[test]
    fn counts_via_path_copy() {
        let c = CounterFromSnapshot::new(PathCopySnapshot::new(2, 100));
        for _ in 0..5 {
            c.increment(ProcessId(1));
        }
        assert_eq!(c.read(), 5);
    }

    #[test]
    fn concurrent_reduction_counts_exactly() {
        let n = 4;
        let per = 200u64;
        let c = Arc::new(CounterFromSnapshot::new(AfekSnapshot::new(n)));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        c.increment(ProcessId(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.read(), n as u64 * per);
    }
}
