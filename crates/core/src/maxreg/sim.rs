//! Simulator step machines for the max registers.
//!
//! These are the *same algorithms* as the real-atomics implementations,
//! expressed against [`ruo_sim`] base objects so that every
//! shared-memory event is visible: step counts are exact, schedules are
//! adversary-controlled, and the lower-bound constructions of
//! `ruo-lowerbound` can be run against them.

use std::sync::Arc;

use ruo_sim::{cas, done, read, write, Machine, Memory, ObjId, ProcessId, Step, Word, NEG_INF};

use crate::maxreg::aac::AacShape;
use crate::shape::AlgorithmATree;
use crate::value::{from_word, to_word};

/// A max register whose operations are simulator step machines.
pub trait SimMaxRegister: Send + Sync {
    /// Number of processes the register supports.
    fn n(&self) -> usize;

    /// A `WriteMax(v)` operation by `pid` as a step machine.
    fn write_max(&self, pid: ProcessId, v: u64) -> Machine;

    /// A `ReadMax` operation as a step machine. The machine's result is
    /// the public value (`-∞` decoded to `0`).
    fn read_max(&self, pid: ProcessId) -> Machine;
}

/// Reads `obj` if present, otherwise continues immediately with `-∞`
/// (missing children cost no step — they are local knowledge).
fn read_opt(obj: Option<ObjId>, k: impl FnOnce(Word) -> Step + Send + 'static) -> Step {
    match obj {
        Some(o) => read(o, k),
        None => k(NEG_INF),
    }
}

/// One propagation level of Algorithm A: the parent cell and its two
/// children's cells.
#[derive(Clone, Copy, Debug)]
struct Level {
    node: ObjId,
    left: Option<ObjId>,
    right: Option<ObjId>,
}

/// Algorithm A as simulator step machines: `ReadMax` is exactly 1 step,
/// `WriteMax(v)` is `O(min(log N, log v))` steps.
#[derive(Debug)]
pub struct SimTreeMaxRegister {
    tree: Arc<AlgorithmATree>,
    cells: Arc<Vec<ObjId>>,
    root_fast_path: bool,
    elimination: bool,
}

impl SimTreeMaxRegister {
    /// Allocates the tree's cells (all `-∞`) in `mem` for `n` processes.
    pub fn new(mem: &mut Memory, n: usize) -> Self {
        let tree = AlgorithmATree::new(n);
        let cells = mem.alloc_n(tree.shape().len(), NEG_INF);
        SimTreeMaxRegister {
            tree: Arc::new(tree),
            cells: Arc::new(cells),
            root_fast_path: false,
            elimination: false,
        }
    }

    /// Fallible [`new`](SimTreeMaxRegister::new): returns a structured
    /// [`TreeSizeError`](crate::maxreg::TreeSizeError) instead of
    /// panicking when `n` is degenerate — parity with the real
    /// register's [`try_new`](crate::maxreg::TreeMaxRegister::try_new).
    pub fn try_new(mem: &mut Memory, n: usize) -> Result<Self, crate::maxreg::TreeSizeError> {
        crate::maxreg::check_tree_size(n)?;
        Ok(Self::new(mem, n))
    }

    /// Like [`new`](SimTreeMaxRegister::new), but `WriteMax(v)` first
    /// reads the root and returns immediately when the root already
    /// carries `v` or more — the `O(1)` dominated-write fast path of the
    /// real [`TreeMaxRegister`](crate::maxreg::TreeMaxRegister)
    /// (DESIGN.md § 4.5: the root is monotone, and root ≥ v means some
    /// covering write has fully propagated, so returning is
    /// linearizable). Opt-in so the default machines keep the paper's
    /// exact per-level step counts pinned by `tests/step_counts.rs`.
    pub fn with_root_fast_path(mem: &mut Memory, n: usize) -> Self {
        let mut reg = Self::new(mem, n);
        reg.root_fast_path = true;
        reg
    }

    /// Like [`with_root_fast_path`](SimTreeMaxRegister::with_root_fast_path),
    /// extended to the **per-level elimination filter** of the real
    /// [`TreeMaxRegister::with_elimination`](crate::maxreg::TreeMaxRegister::with_elimination):
    /// when the root check misses, `WriteMax(v)` scans its own
    /// leaf-to-root path top-down and, at the first node already
    /// holding `≥ v`, skips the leaf entirely and runs `Propagate` over
    /// only the levels above that node. Node values are monotone, so the
    /// partial climb leaves the root `≥ v` before the machine completes
    /// — the same suffix-of-Lemma-9 argument as the real register.
    pub fn with_elimination(mem: &mut Memory, n: usize) -> Self {
        let mut reg = Self::new(mem, n);
        reg.root_fast_path = true;
        reg.elimination = true;
        reg
    }

    /// The tree layout.
    pub fn tree(&self) -> &AlgorithmATree {
        &self.tree
    }

    fn levels_from(&self, leaf: usize) -> Vec<Level> {
        let shape = self.tree.shape();
        shape
            .ancestors(leaf)
            .into_iter()
            .map(|a| {
                let info = shape.node(a);
                Level {
                    node: self.cells[a],
                    left: info.left.map(|i| self.cells[i]),
                    right: info.right.map(|i| self.cells[i]),
                }
            })
            .collect()
    }
}

/// `Propagate`: at each level read the parent, read both children, CAS
/// the max in — twice per level (lines 3–9 of Algorithm A).
fn propagate(levels: Arc<Vec<Level>>, i: usize, attempt: u8) -> Step {
    if i == levels.len() {
        return done(0);
    }
    let lv = levels[i];
    read(lv.node, move |old| {
        read_opt(lv.left, move |l| {
            read_opt(lv.right, move |r| {
                cas(lv.node, old, l.max(r), move |_| {
                    if attempt == 0 {
                        propagate(levels, i, 1)
                    } else {
                        propagate(levels, i + 1, 0)
                    }
                })
            })
        })
    })
}

/// Top-down per-level elimination scan: `j` indexes the next path level
/// to probe (descending from just below the root). The first node found
/// `≥ w` witnesses a covering write that propagated at least this far;
/// the scan finishes its climb with `Propagate` over the levels above it
/// (`j + 1..`). If the scan reaches the bottom without a hit, the
/// ordinary leaf body runs.
fn elim_scan(
    levels: Arc<Vec<Level>>,
    j: usize,
    w: Word,
    body: Box<dyn FnOnce() -> Step + Send>,
) -> Step {
    let node = levels[j].node;
    read(node, move |x| {
        if x >= w {
            propagate(levels, j + 1, 0)
        } else if j == 0 {
            body()
        } else {
            elim_scan(levels, j - 1, w, body)
        }
    })
}

impl SimMaxRegister for SimTreeMaxRegister {
    fn n(&self) -> usize {
        self.tree.n()
    }

    fn write_max(&self, pid: ProcessId, v: u64) -> Machine {
        if v == 0 {
            return Machine::completed(0);
        }
        let w = to_word(v);
        let leaf = self.tree.leaf_for(pid.index(), v);
        let leaf_cell = self.cells[leaf];
        let levels = Arc::new(self.levels_from(leaf));
        // `w <= old` on a shared TL value-leaf means another process
        // stored `v` but may not have propagated yet — help it (see the
        // real implementation for why the paper's unconditional early
        // return is unsound there). TR leaves are single-writer: our own
        // earlier completed write covers us, so returning is safe.
        let help = (v as u128) < self.tree.n() as u128;
        let body: Box<dyn FnOnce() -> Step + Send> = {
            let levels = Arc::clone(&levels);
            Box::new(move || {
                read(leaf_cell, move |old| {
                    if w <= old {
                        if help {
                            propagate(levels, 0, 0)
                        } else {
                            done(0)
                        }
                    } else {
                        write(leaf_cell, w, move || propagate(levels, 0, 0))
                    }
                })
            })
        };
        let elimination = self.elimination;
        if self.root_fast_path {
            // Dominated-write fast path (DESIGN.md § 4.5): the root is
            // monotone and only reaches `v` after a covering write fully
            // propagated, so root ≥ v makes an immediate return
            // linearizable — one step total. With elimination enabled the
            // miss falls through to the per-level scan instead of
            // straight to the leaf.
            let root_cell = self.cells[self.tree.root()];
            Machine::new(read(root_cell, move |r| {
                if from_word(r) >= v {
                    done(0)
                } else if elimination && levels.len() > 1 {
                    let top = levels.len() - 2;
                    elim_scan(levels, top, w, body)
                } else {
                    body()
                }
            }))
        } else {
            Machine::new(body())
        }
    }

    fn read_max(&self, _pid: ProcessId) -> Machine {
        let root = self.cells[self.tree.root()];
        Machine::new(read(root, |w| done(from_word(w) as Word)))
    }
}

/// The AAC read/write-only register as step machines: both operations
/// are `O(log M)` steps.
#[derive(Debug)]
pub struct SimAacMaxRegister {
    shape: Arc<AacShape>,
    switches: Arc<Vec<ObjId>>,
    n: usize,
}

impl SimAacMaxRegister {
    /// Allocates the switch cells (all unset) in `mem`, balanced shape.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is invalid (see [`AacShape::new`]).
    pub fn new(mem: &mut Memory, n: usize, capacity: u64) -> Self {
        Self::with_shape(mem, n, AacShape::new(capacity))
    }

    /// Allocates the Bentley–Yao-skewed variant: operations on value `v`
    /// cost `O(min(log capacity, log v))` steps.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is invalid (see [`AacShape::new_unbalanced`]).
    pub fn new_unbalanced(mem: &mut Memory, n: usize, capacity: u64) -> Self {
        Self::with_shape(mem, n, AacShape::new_unbalanced(capacity))
    }

    fn with_shape(mem: &mut Memory, n: usize, shape: AacShape) -> Self {
        let switches = mem.alloc_n(shape.switch_count(), 0);
        SimAacMaxRegister {
            shape: Arc::new(shape),
            switches: Arc::new(switches),
            n,
        }
    }

    /// The register's capacity `M`.
    pub fn capacity(&self) -> u64 {
        self.shape.capacity()
    }
}

type K = Box<dyn FnOnce() -> Step + Send>;
type ValueK = Box<dyn FnOnce(u64) -> Step + Send>;

pub(crate) fn aac_write(
    shape: Arc<AacShape>,
    cells: Arc<Vec<ObjId>>,
    idx: usize,
    v: u64,
    k: K,
) -> Step {
    let node = *shape.node(idx);
    let (Some(left), Some(right), Some(sw)) = (node.left, node.right, node.switch) else {
        return k();
    };
    let sw_cell = cells[sw];
    if v >= node.half {
        // Write the right subregister, then set the switch.
        let after: K = Box::new(move || write(sw_cell, 1, k));
        aac_write(shape, cells, right, v - node.half, after)
    } else {
        read(sw_cell, move |s| {
            if s != 0 {
                k() // dominated by a larger value already
            } else {
                aac_write(shape, cells, left, v, k)
            }
        })
    }
}

pub(crate) fn aac_read_k(
    shape: Arc<AacShape>,
    cells: Arc<Vec<ObjId>>,
    idx: usize,
    base: u64,
    k: ValueK,
) -> Step {
    let node = *shape.node(idx);
    let (Some(left), Some(right), Some(sw)) = (node.left, node.right, node.switch) else {
        return k(base);
    };
    let sw_cell = cells[sw];
    read(sw_cell, move |s| {
        if s != 0 {
            aac_read_k(shape, cells, right, base + node.half, k)
        } else {
            aac_read_k(shape, cells, left, base, k)
        }
    })
}

fn aac_read(shape: Arc<AacShape>, cells: Arc<Vec<ObjId>>, idx: usize, base: u64) -> Step {
    aac_read_k(shape, cells, idx, base, Box::new(|v| done(v as Word)))
}

impl SimMaxRegister for SimAacMaxRegister {
    fn n(&self) -> usize {
        self.n
    }

    /// # Panics
    ///
    /// Panics if `v` exceeds the register's bound.
    fn write_max(&self, _pid: ProcessId, v: u64) -> Machine {
        assert!(
            v < self.shape.capacity(),
            "value {v} exceeds the AAC register bound {}",
            self.shape.capacity()
        );
        let shape = Arc::clone(&self.shape);
        let cells = Arc::clone(&self.switches);
        let root = shape.root();
        Machine::new(aac_write(shape, cells, root, v, Box::new(|| done(0))))
    }

    fn read_max(&self, _pid: ProcessId) -> Machine {
        let shape = Arc::clone(&self.shape);
        let cells = Arc::clone(&self.switches);
        let root = shape.root();
        Machine::new(aac_read(shape, cells, root, 0))
    }
}

/// The single-cell CAS-retry register as step machines.
#[derive(Debug)]
pub struct SimCasRetryMaxRegister {
    cell: ObjId,
    n: usize,
}

impl SimCasRetryMaxRegister {
    /// Allocates the cell (value `0`) in `mem`.
    pub fn new(mem: &mut Memory, n: usize) -> Self {
        SimCasRetryMaxRegister {
            cell: mem.alloc(0),
            n,
        }
    }
}

fn cas_retry_write(cell: ObjId, v: Word) -> Step {
    read(cell, move |cur| {
        if cur >= v {
            done(0)
        } else {
            cas(cell, cur, v, move |ok| {
                if ok == 1 {
                    done(0)
                } else {
                    cas_retry_write(cell, v)
                }
            })
        }
    })
}

impl SimMaxRegister for SimCasRetryMaxRegister {
    fn n(&self) -> usize {
        self.n
    }

    fn write_max(&self, _pid: ProcessId, v: u64) -> Machine {
        Machine::new(cas_retry_write(self.cell, to_word(v)))
    }

    fn read_max(&self, _pid: ProcessId) -> Machine {
        let cell = self.cell;
        Machine::new(read(cell, done))
    }
}

/// The Jayanti f-array max register as step machines: one per-process
/// slot, tree of maxima — `O(1)` read, `O(log N)` write *regardless of
/// the value* (no B1 shortcut; compare [`SimTreeMaxRegister`]).
#[derive(Debug)]
pub struct SimFArrayMaxRegister {
    fa: crate::farray_sim::SimFArray<crate::farray::Max>,
}

impl SimFArrayMaxRegister {
    /// Allocates the tree's cells (all `-∞`) in `mem` for `n` processes.
    pub fn new(mem: &mut Memory, n: usize) -> Self {
        SimFArrayMaxRegister {
            fa: crate::farray_sim::SimFArray::new(mem, n),
        }
    }
}

impl SimMaxRegister for SimFArrayMaxRegister {
    fn n(&self) -> usize {
        self.fa.n()
    }

    fn write_max(&self, pid: ProcessId, v: u64) -> Machine {
        // `merge` with Max combine: a dominated write ends after the slot
        // read (our own earlier completed write already propagated —
        // single-writer slot); otherwise the slot is raised and the
        // maximum propagated.
        self.fa.merge(pid, to_word(v))
    }

    fn read_max(&self, _pid: ProcessId) -> Machine {
        let root = self.fa.root_cell();
        Machine::new(read(root, |w| done(from_word(w) as Word)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruo_sim::{run_solo, Memory, ProcessId};

    #[test]
    fn tree_read_is_exactly_one_step() {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, 8);
        let (v, steps) = run_solo(&mut mem, ProcessId(0), reg.read_max(ProcessId(0)));
        assert_eq!(v, 0);
        assert_eq!(steps, 1, "ReadMax must be O(1) — exactly one step here");
    }

    #[test]
    fn tree_write_then_read_round_trips() {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, 4);
        run_solo(&mut mem, ProcessId(1), reg.write_max(ProcessId(1), 3));
        let (v, _) = run_solo(&mut mem, ProcessId(2), reg.read_max(ProcessId(2)));
        assert_eq!(v, 3);
        run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), 100));
        let (v, _) = run_solo(&mut mem, ProcessId(2), reg.read_max(ProcessId(2)));
        assert_eq!(v, 100);
        // Smaller write does not lower the register.
        run_solo(&mut mem, ProcessId(3), reg.write_max(ProcessId(3), 7));
        let (v, _) = run_solo(&mut mem, ProcessId(2), reg.read_max(ProcessId(2)));
        assert_eq!(v, 100);
    }

    #[test]
    fn tree_write_cost_grows_with_value_not_n() {
        let mut mem = Memory::new();
        let n = 1 << 10;
        let reg = SimTreeMaxRegister::new(&mut mem, n);
        let (_, steps_small) = run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), 1));
        let mut mem2 = Memory::new();
        let reg2 = SimTreeMaxRegister::new(&mut mem2, n);
        let (_, steps_large) = run_solo(
            &mut mem2,
            ProcessId(0),
            reg2.write_max(ProcessId(0), 1 << 40),
        );
        assert!(
            steps_small < steps_large,
            "WriteMax(1) ({steps_small}) should be cheaper than WriteMax(2^40) ({steps_large})"
        );
        // 8 events per level for large values over a depth-~11 path.
        assert!(steps_large <= 2 + 8 * 12);
    }

    #[test]
    fn root_fast_path_makes_dominated_writes_one_step() {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::with_root_fast_path(&mut mem, 4);
        run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), 3));
        // Strictly dominated and equal-value writes: one root read.
        let (_, dom) = run_solo(&mut mem, ProcessId(1), reg.write_max(ProcessId(1), 2));
        assert_eq!(dom, 1, "dominated write must be the O(1) fast path");
        let (_, eq) = run_solo(&mut mem, ProcessId(2), reg.write_max(ProcessId(2), 3));
        assert_eq!(eq, 1, "equal-value write must be the O(1) fast path");
        let (v, _) = run_solo(&mut mem, ProcessId(3), reg.read_max(ProcessId(3)));
        assert_eq!(v, 3);
    }

    #[test]
    fn root_fast_path_costs_one_extra_step_when_not_dominated() {
        // Same write, with and without the fast-path probe: the probe
        // adds exactly one root read when it does not trigger.
        let mut mem_a = Memory::new();
        let plain = SimTreeMaxRegister::new(&mut mem_a, 4);
        let (_, base) = run_solo(&mut mem_a, ProcessId(0), plain.write_max(ProcessId(0), 3));
        let mut mem_b = Memory::new();
        let fast = SimTreeMaxRegister::with_root_fast_path(&mut mem_b, 4);
        let (_, probed) = run_solo(&mut mem_b, ProcessId(0), fast.write_max(ProcessId(0), 3));
        assert_eq!(probed, base + 1);
        let (va, _) = run_solo(&mut mem_a, ProcessId(1), plain.read_max(ProcessId(1)));
        let (vb, _) = run_solo(&mut mem_b, ProcessId(1), fast.read_max(ProcessId(1)));
        assert_eq!(va, vb);
        assert_eq!(va, 3);
    }

    #[test]
    fn elimination_keeps_the_one_step_dominated_fast_path() {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::with_elimination(&mut mem, 4);
        run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), 3));
        let (_, dom) = run_solo(&mut mem, ProcessId(1), reg.write_max(ProcessId(1), 2));
        assert_eq!(dom, 1, "fully propagated cover: still one root read");
        let (v, _) = run_solo(&mut mem, ProcessId(2), reg.read_max(ProcessId(2)));
        assert_eq!(v, 3);
    }

    #[test]
    fn elimination_completes_a_stalled_cover_without_touching_the_leaf() {
        // Writer A stores 1 in its TL value-leaf and propagates exactly
        // one level, then stalls: the leaf's parent carries the value,
        // the root does not. Writer B's eliminated WriteMax(1) must find
        // the parent during its top-down scan and finish the climb —
        // without ever reading or writing the leaf.
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::with_elimination(&mut mem, 4);
        let leaf = reg.tree.leaf_for(0, 1);
        let parent = reg.tree.shape().ancestors(leaf)[0];

        // Plain machine for A (no fast path interference): drive it
        // until the parent holds the value, then stop.
        let plain = SimTreeMaxRegister {
            tree: Arc::clone(&reg.tree),
            cells: Arc::clone(&reg.cells),
            root_fast_path: false,
            elimination: false,
        };
        let mut a = plain.write_max(ProcessId(0), 1);
        while mem.peek(reg.cells[parent]) != to_word(1) {
            let p = a.enabled().expect("A must reach the first level");
            let r = mem.apply(ProcessId(0), p);
            a.feed(r);
        }
        let (root_now, _) = run_solo(&mut mem, ProcessId(2), reg.read_max(ProcessId(2)));
        assert_eq!(root_now, 0, "root must still lag the stalled cover");

        let leaf_cell = reg.cells[leaf];
        let writes_to_leaf_before = mem.peek(leaf_cell);
        let (_, steps) = run_solo(&mut mem, ProcessId(1), reg.write_max(ProcessId(1), 1));
        assert_eq!(mem.peek(leaf_cell), writes_to_leaf_before);
        let (v, _) = run_solo(&mut mem, ProcessId(2), reg.read_max(ProcessId(2)));
        assert_eq!(v, 1, "B's partial climb must complete the propagation");
        // B paid: 1 root read + top-down scan + the suffix climb — but
        // never the full leaf write path.
        let full_depth = reg.tree.shape().ancestors(leaf).len();
        assert!(
            steps <= 1 + full_depth + 8 * full_depth,
            "scan+climb should stay within one path's budget: {steps}"
        );
    }

    #[test]
    fn tree_write_of_zero_takes_no_steps() {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, 4);
        let m = reg.write_max(ProcessId(0), 0);
        assert!(m.is_done());
    }

    #[test]
    fn aac_round_trips_every_value() {
        for cap in [1u64, 2, 5, 8, 16] {
            for v in 0..cap {
                let mut mem = Memory::new();
                let reg = SimAacMaxRegister::new(&mut mem, 2, cap);
                run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), v));
                let (got, _) = run_solo(&mut mem, ProcessId(1), reg.read_max(ProcessId(1)));
                assert_eq!(got as u64, v, "cap={cap} v={v}");
            }
        }
    }

    #[test]
    fn aac_read_and_write_are_logarithmic_in_capacity() {
        let mut mem = Memory::new();
        let cap = 1 << 10;
        let reg = SimAacMaxRegister::new(&mut mem, 2, cap);
        let (_, wsteps) = run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), cap - 1));
        let (_, rsteps) = run_solo(&mut mem, ProcessId(1), reg.read_max(ProcessId(1)));
        assert!(wsteps <= 11, "write steps {wsteps}");
        assert!((10..=11).contains(&rsteps), "read steps {rsteps}");
    }

    #[test]
    fn aac_max_of_two_writes_wins() {
        let mut mem = Memory::new();
        let reg = SimAacMaxRegister::new(&mut mem, 2, 64);
        run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), 40));
        run_solo(&mut mem, ProcessId(1), reg.write_max(ProcessId(1), 17));
        let (got, _) = run_solo(&mut mem, ProcessId(0), reg.read_max(ProcessId(0)));
        assert_eq!(got, 40);
    }

    #[test]
    fn unbalanced_aac_small_values_are_cheap() {
        let cap = 1u64 << 14;
        let mut mem = Memory::new();
        let reg = SimAacMaxRegister::new_unbalanced(&mut mem, 2, cap);
        let (_, small) = run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), 1));
        // Read while the max is small is also cheap.
        let (v, rsteps) = run_solo(&mut mem, ProcessId(1), reg.read_max(ProcessId(1)));
        assert_eq!(v, 1);
        assert!(small <= 4, "WriteMax(1) took {small} steps");
        assert!(
            rsteps <= 4,
            "ReadMax took {rsteps} steps while max is small"
        );

        let mut mem2 = Memory::new();
        let reg2 = SimAacMaxRegister::new_unbalanced(&mut mem2, 2, cap);
        let (_, large) = run_solo(
            &mut mem2,
            ProcessId(0),
            reg2.write_max(ProcessId(0), cap - 1),
        );
        assert!(
            large > small && large <= 2 * 15 + 2,
            "WriteMax(cap-1) took {large} steps"
        );
        let (v2, _) = run_solo(&mut mem2, ProcessId(1), reg2.read_max(ProcessId(1)));
        assert_eq!(v2 as u64, cap - 1);
    }

    #[test]
    fn farray_maxreg_costs_and_semantics() {
        let mut mem = Memory::new();
        let reg = SimFArrayMaxRegister::new(&mut mem, 8);
        let (v, rsteps) = run_solo(&mut mem, ProcessId(0), reg.read_max(ProcessId(0)));
        assert_eq!(v, 0);
        assert_eq!(rsteps, 1, "fresh read is one step");
        // Write cost is O(log N) regardless of the value.
        let (_, w_small) = run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), 1));
        let (_, w_large) = run_solo(&mut mem, ProcessId(1), reg.write_max(ProcessId(1), 1 << 40));
        assert_eq!(w_small, 2 + 8 * 3);
        assert_eq!(w_large, 2 + 8 * 3);
        let (v, _) = run_solo(&mut mem, ProcessId(2), reg.read_max(ProcessId(2)));
        assert_eq!(v, 1 << 40);
        // Dominated write: one step (the slot read).
        let (_, dom) = run_solo(&mut mem, ProcessId(1), reg.write_max(ProcessId(1), 7));
        assert_eq!(dom, 1);
        let (v, _) = run_solo(&mut mem, ProcessId(2), reg.read_max(ProcessId(2)));
        assert_eq!(v, 1 << 40);
    }

    #[test]
    fn cas_retry_solo_write_is_two_steps() {
        let mut mem = Memory::new();
        let reg = SimCasRetryMaxRegister::new(&mut mem, 2);
        let (_, steps) = run_solo(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), 9));
        assert_eq!(steps, 2);
        let (v, rsteps) = run_solo(&mut mem, ProcessId(1), reg.read_max(ProcessId(1)));
        assert_eq!(v, 9);
        assert_eq!(rsteps, 1);
    }

    #[test]
    fn interleaved_tree_writes_keep_maximum() {
        // Drive two write machines in lockstep; root must end at the max.
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, 4);
        let mut m0 = reg.write_max(ProcessId(0), 5);
        let mut m1 = reg.write_max(ProcessId(1), 900);
        loop {
            let mut progressed = false;
            if let Some(p) = m0.enabled() {
                let r = mem.apply(ProcessId(0), p);
                m0.feed(r);
                progressed = true;
            }
            if let Some(p) = m1.enabled() {
                let r = mem.apply(ProcessId(1), p);
                m1.feed(r);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        let (v, _) = run_solo(&mut mem, ProcessId(2), reg.read_max(ProcessId(2)));
        assert_eq!(v, 900);
    }
}
