//! Max-register implementations.
//!
//! | Implementation | Primitives | `ReadMax` | `WriteMax(v)` | Progress |
//! |---|---|---|---|---|
//! | [`TreeMaxRegister`] (Algorithm A) | read/write/CAS | `O(1)` | `O(min(log N, log v))` | wait-free |
//! | [`AacMaxRegister`] | read/write | `O(log M)` | `O(log M)` | wait-free, `M`-bounded |
//! | [`FArrayMaxRegister`] (Jayanti) | read/write/CAS | `O(1)` | `O(log N)` | wait-free |
//! | [`CasRetryMaxRegister`] | read/CAS | `O(1)` | `O(1)` uncontended | lock-free |
//! | [`ApproxMaxRegister`] (k-accurate, HKM) | read/CAS | `O(1)`, within factor `k` | `O(1)` dominated | lock-free |
//! | [`LockMaxRegister`] | mutex | — | — | blocking baseline |
//!
//! The first three also exist as simulator step machines in [`sim`],
//! where their step counts can be measured exactly and the lower-bound
//! adversaries of `ruo-lowerbound` can be run against them.

pub mod aac;
mod approx;
mod cas_retry;
mod farray;
mod lock;
pub mod sim;
mod tree;

pub use aac::{AacMaxRegister, AacShape, CapacityError};
pub use approx::{ApproxMaxRegister, SimApproxMaxRegister};
pub use cas_retry::CasRetryMaxRegister;
pub use farray::FArrayMaxRegister;
pub use lock::LockMaxRegister;
pub use tree::{check_tree_size, TreeMaxRegister, TreeSizeError, MAX_PROCESSES};
