//! Algorithm A: the paper's wait-free max register with constant-time
//! reads (Section 5).
//!
//! The register is a binary tree of single-word nodes initialized to
//! `-∞` (Figure 4). `ReadMax` reads the root — one step. `WriteMax(v)`
//! writes `v` to a leaf (the `v`-th leaf of the B1 subtree `TL` when
//! `v < N`, else the caller's leaf in the complete subtree `TR`) and
//! propagates the maximum toward the root: at each level it reads the
//! parent, reads both children, and CASes `max(left, right)` into the
//! parent — *twice*. The second attempt guarantees that if both CASes
//! fail, a concurrent CAS installed a value at least as fresh, which is
//! the key to linearizability (Lemma 9 of the paper).

use std::sync::atomic::{AtomicI64, Ordering};

use ruo_sim::ProcessId;

use crate::shape::AlgorithmATree;
use crate::traits::MaxRegister;
use crate::value::{from_word, to_word};

/// The paper's Algorithm A: `O(1)` `ReadMax`, `O(min(log N, log v))`
/// `WriteMax(v)`, wait-free, linearizable, from `read`/`write`/`CAS`.
///
/// ```
/// use ruo_core::maxreg::TreeMaxRegister;
/// use ruo_core::MaxRegister;
/// use ruo_sim::ProcessId;
///
/// let reg = TreeMaxRegister::new(8);
/// reg.write_max(ProcessId(3), 1_000_000);
/// reg.write_max(ProcessId(5), 7);
/// assert_eq!(reg.read_max(), 1_000_000);
/// ```
#[derive(Debug)]
pub struct TreeMaxRegister {
    tree: AlgorithmATree,
    cells: Box<[AtomicI64]>,
}

impl TreeMaxRegister {
    /// Creates a register shared by `n` processes. All nodes start at
    /// `-∞`; a fresh register reads `0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        let tree = AlgorithmATree::new(n);
        let cells = (0..tree.shape().len())
            .map(|_| AtomicI64::new(ruo_sim::NEG_INF))
            .collect();
        TreeMaxRegister { tree, cells }
    }

    /// Number of processes sharing the register.
    pub fn n(&self) -> usize {
        self.tree.n()
    }

    /// The static tree layout (exposed for layout inspection and the
    /// Figure 4 regeneration binary).
    pub fn tree(&self) -> &AlgorithmATree {
        &self.tree
    }

    #[inline]
    fn load(&self, idx: usize) -> i64 {
        self.cells[idx].load(Ordering::SeqCst)
    }

    #[inline]
    fn child_value(&self, idx: Option<usize>) -> i64 {
        idx.map_or(ruo_sim::NEG_INF, |i| self.load(i))
    }

    /// The paper's `Propagate(n)`: climb from `leaf` to the root,
    /// CASing `max(left, right)` into each ancestor twice.
    fn propagate(&self, leaf: usize) {
        let shape = self.tree.shape();
        for node in shape.ancestors(leaf) {
            let info = shape.node(node);
            for _ in 0..2 {
                let old = self.load(node);
                let new = self
                    .child_value(info.left)
                    .max(self.child_value(info.right));
                // A failed CAS means a concurrent propagator updated the
                // node after we read `old`; the second iteration (or that
                // propagator itself) covers our value.
                let _ =
                    self.cells[node].compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst);
            }
        }
    }
}

impl MaxRegister for TreeMaxRegister {
    fn write_max(&self, pid: ProcessId, v: u64) {
        if v == 0 {
            return; // a fresh register already reads 0
        }
        let w = to_word(v);
        let leaf = self.tree.leaf_for(pid.index(), v);
        let old = self.load(leaf);
        if w <= old {
            // The paper's pseudo-code returns here unconditionally, but
            // that is unsound for shared TL value-leaves: the process
            // that stored `v` may be stalled *before* propagating, in
            // which case returning would complete a WriteMax(v) that no
            // subsequent ReadMax reflects. Help propagate instead; the
            // cost stays O(depth(leaf)) = O(min(log N, log v)). TR
            // leaves are single-writer, so there `w <= old` means our
            // own earlier (completed, hence fully propagated) write
            // already covers us and returning is safe.
            if (v as u128) < self.n() as u128 {
                self.propagate(leaf);
            }
            return;
        }
        // TL value-leaves only ever receive the single value `v`; TR
        // process-leaves are single-writer. Either way a plain store of a
        // strictly larger value is safe.
        self.cells[leaf].store(w, Ordering::SeqCst);
        self.propagate(leaf);
    }

    fn read_max(&self) -> u64 {
        from_word(self.load(self.tree.root()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_register_reads_zero() {
        let reg = TreeMaxRegister::new(4);
        assert_eq!(reg.read_max(), 0);
    }

    #[test]
    fn read_returns_maximum_of_writes() {
        let reg = TreeMaxRegister::new(4);
        reg.write_max(ProcessId(0), 5);
        reg.write_max(ProcessId(1), 3);
        assert_eq!(reg.read_max(), 5);
        reg.write_max(ProcessId(2), 9);
        assert_eq!(reg.read_max(), 9);
    }

    #[test]
    fn small_and_large_values_both_propagate() {
        // Small values go through TL, large through TR; both must reach
        // the root.
        let reg = TreeMaxRegister::new(4);
        reg.write_max(ProcessId(0), 2); // TL (2 < 4)
        assert_eq!(reg.read_max(), 2);
        reg.write_max(ProcessId(0), 100); // TR (100 >= 4)
        assert_eq!(reg.read_max(), 100);
    }

    #[test]
    fn write_of_zero_is_a_noop() {
        let reg = TreeMaxRegister::new(2);
        reg.write_max(ProcessId(0), 0);
        assert_eq!(reg.read_max(), 0);
        reg.write_max(ProcessId(0), 4);
        reg.write_max(ProcessId(1), 0);
        assert_eq!(reg.read_max(), 4);
    }

    #[test]
    fn single_process_register_works() {
        let reg = TreeMaxRegister::new(1);
        reg.write_max(ProcessId(0), 10);
        reg.write_max(ProcessId(0), 3);
        assert_eq!(reg.read_max(), 10);
    }

    #[test]
    fn same_process_monotone_sequence() {
        let reg = TreeMaxRegister::new(2);
        for v in 1..=64u64 {
            reg.write_max(ProcessId(0), v);
            assert_eq!(reg.read_max(), v);
        }
    }

    #[test]
    fn concurrent_writers_never_lose_the_maximum() {
        let n = 8;
        let reg = Arc::new(TreeMaxRegister::new(n));
        let per_thread = 500u64;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for k in 0..per_thread {
                        let v = k * (n as u64) + i as u64 + 1;
                        reg.write_max(ProcessId(i), v);
                        // Reads must never regress below our own writes.
                        assert!(reg.read_max() >= v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected = (per_thread - 1) * (n as u64) + n as u64;
        assert_eq!(reg.read_max(), expected);
    }

    #[test]
    fn concurrent_readers_see_monotone_values() {
        let reg = Arc::new(TreeMaxRegister::new(4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = reg.read_max();
                        assert!(v >= last, "regressed from {last} to {v}");
                        last = v;
                    }
                })
            })
            .collect();
        for v in 1..=2000u64 {
            reg.write_max(ProcessId(0), v);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(reg.read_max(), 2000);
    }
}
