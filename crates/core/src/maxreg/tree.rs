//! Algorithm A: the paper's wait-free max register with constant-time
//! reads (Section 5).
//!
//! The register is a binary tree of single-word nodes initialized to
//! `-∞` (Figure 4). `ReadMax` reads the root — one step. `WriteMax(v)`
//! writes `v` to a leaf (the `v`-th leaf of the B1 subtree `TL` when
//! `v < N`, else the caller's leaf in the complete subtree `TR`) and
//! propagates the maximum toward the root: at each level it reads the
//! parent, reads both children, and CASes `max(left, right)` into the
//! parent — *twice*. The second attempt guarantees that if both CASes
//! fail, a concurrent CAS installed a value at least as fresh, which is
//! the key to linearizability (Lemma 9 of the paper).
//!
//! This implementation additionally takes an `O(1)` *dominated-write*
//! fast path: `WriteMax(v)` first reads the root and returns when the
//! root already carries `v` or more. Unlike the paper's leaf-based
//! early return (which is unsound on shared value-leaves — see
//! `DESIGN.md` § Deviations), the root check observes a fully
//! propagated covering write, so returning is linearizable. Leaf-to-root
//! paths are precomputed at construction and each node sits on its own
//! padded cache-line pair, keeping the contended propagation loop free
//! of allocation and false sharing.

use std::fmt;
use std::sync::atomic::Ordering;

use ruo_sim::stepcount::CountingI64;
use ruo_sim::ProcessId;

use crate::pad::CachePadded;
use crate::shape::{AlgorithmATree, PathNode, NO_CHILD};
use crate::traits::MaxRegister;
use crate::value::{from_word, to_word};

/// Hard cap on the process count accepted by
/// [`TreeMaxRegister::try_new`]: the tree arena materializes eagerly
/// (roughly four nodes per process across the B1 and TR subtrees), so
/// the cap keeps construction bounded well below the arena's `u32`
/// index space — the same guard style as
/// [`MAX_CAPACITY`](crate::maxreg::aac::MAX_CAPACITY) for the AAC
/// register.
pub const MAX_PROCESSES: usize = 1 << 24;

/// Error returned by [`TreeMaxRegister::try_new`] and
/// [`SimTreeMaxRegister::try_new`](crate::maxreg::sim::SimTreeMaxRegister::try_new)
/// for a degenerate process count (`n == 0`, which has no leaves to
/// write, or `n > MAX_PROCESSES`, which would materialize an excessive
/// arena).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeSizeError {
    /// The rejected process count.
    pub n: usize,
    /// The hard cap ([`MAX_PROCESSES`]).
    pub max_processes: usize,
    /// Approximate node-cell count the tree for `n` would allocate.
    pub estimated_cells: u64,
}

impl fmt::Display for TreeSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.n == 0 {
            write!(f, "Algorithm A needs at least one process")
        } else {
            write!(
                f,
                "process count {} exceeds MAX_PROCESSES ({}): the tree arena materializes \
                 eagerly and would allocate ~{} node cells up front",
                self.n, self.max_processes, self.estimated_cells
            )
        }
    }
}

impl std::error::Error for TreeSizeError {}

/// Validates a process count for Algorithm A's tree; shared by the
/// real-atomics and simulator `try_new` constructors and by the
/// scenario registry's capability check.
pub fn check_tree_size(n: usize) -> Result<(), TreeSizeError> {
    if n == 0 || n > MAX_PROCESSES {
        Err(TreeSizeError {
            n,
            max_processes: MAX_PROCESSES,
            estimated_cells: 4 * n as u64,
        })
    } else {
        Ok(())
    }
}

/// The paper's Algorithm A: `O(1)` `ReadMax`, `O(min(log N, log v))`
/// `WriteMax(v)`, wait-free, linearizable, from `read`/`write`/`CAS`.
///
/// ```
/// use ruo_core::maxreg::TreeMaxRegister;
/// use ruo_core::MaxRegister;
/// use ruo_sim::ProcessId;
///
/// let reg = TreeMaxRegister::new(8);
/// reg.write_max(ProcessId(3), 1_000_000);
/// reg.write_max(ProcessId(5), 7);
/// assert_eq!(reg.read_max(), 1_000_000);
/// ```
#[derive(Debug)]
pub struct TreeMaxRegister {
    tree: AlgorithmATree,
    /// One padded cell per tree node: neighbouring nodes never share a
    /// cache-line pair, so a CAS on one node does not invalidate its
    /// arena neighbours under every other core (see [`crate::pad`]).
    cells: Box<[CachePadded<CountingI64>]>,
    /// Per-level elimination filter (opt-in via
    /// [`with_elimination`](TreeMaxRegister::with_elimination)): when the
    /// root check misses, scan the leaf-to-root path top-down and stop a
    /// dominated write at the *first* path node already carrying `≥ v`,
    /// finishing with a partial climb from that node instead of a leaf
    /// store plus full propagation.
    elimination: bool,
}

impl TreeMaxRegister {
    /// Creates a register shared by `n` processes. All nodes start at
    /// `-∞`; a fresh register reads `0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        let tree = AlgorithmATree::new(n);
        let cells = (0..tree.shape().len())
            .map(|_| CachePadded::new(CountingI64::new(ruo_sim::NEG_INF)))
            .collect();
        TreeMaxRegister {
            tree,
            cells,
            elimination: false,
        }
    }

    /// Like [`new`](TreeMaxRegister::new), with the **per-level
    /// elimination filter** enabled: a `WriteMax(v)` whose root check
    /// misses scans its own leaf-to-root path top-down and, at the first
    /// node already holding `≥ v`, skips the leaf store entirely and
    /// climbs only the levels *above* that node.
    ///
    /// Soundness extends the § 4.5 root argument one level at a time:
    /// node values are monotone, so a path node `u ≥ v` stays `≥ v`;
    /// running `Propagate` over the ancestors of `u` then leaves the
    /// root `≥ v` before the write returns (each double-CAS level covers
    /// the child value it read — Lemma 9's argument applied to a path
    /// suffix). Returning *without* that partial climb would be unsound:
    /// the dominating value may be stalled below the root forever.
    ///
    /// Cost shape: dominated writes whose cover is stalled at depth `d`
    /// finish in `O(d)` instead of `O(depth(leaf))` CAS rounds; fresh
    /// maxima pay up to one extra read per level for the failed scan.
    /// Under write-heavy contention most writes are dominated, which is
    /// the regime this filter targets (experiment W8).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn with_elimination(n: usize) -> Self {
        let mut reg = Self::new(n);
        reg.elimination = true;
        reg
    }

    /// Fallible [`new`](TreeMaxRegister::new): returns a structured
    /// [`TreeSizeError`] instead of panicking when `n` is degenerate
    /// (`0` or beyond [`MAX_PROCESSES`]) — parity with
    /// [`AacMaxRegister::try_new`](crate::maxreg::AacMaxRegister::try_new).
    pub fn try_new(n: usize) -> Result<Self, TreeSizeError> {
        check_tree_size(n)?;
        Ok(Self::new(n))
    }

    /// Number of processes sharing the register.
    pub fn n(&self) -> usize {
        self.tree.n()
    }

    /// The static tree layout (exposed for layout inspection and the
    /// Figure 4 regeneration binary).
    pub fn tree(&self) -> &AlgorithmATree {
        &self.tree
    }

    #[inline]
    fn child_value(&self, idx: u32) -> i64 {
        // SeqCst: these sibling reads pair with leaf stores in the
        // store-buffering pattern of `Propagate`; see DESIGN.md
        // § Memory orderings.
        if idx == NO_CHILD {
            ruo_sim::NEG_INF
        } else {
            self.cells[idx as usize].load(Ordering::SeqCst)
        }
    }

    /// The paper's `Propagate(n)`: climb the precomputed leaf-to-root
    /// path, CASing `max(left, right)` into each ancestor (at most)
    /// twice. The path carries inlined child links, so the loop touches
    /// no shape metadata and performs no allocation.
    fn propagate(&self, leaf: usize) {
        self.propagate_path(self.tree.path_for(leaf));
    }

    /// `Propagate` over an explicit (suffix of a) bottom-up path — the
    /// whole path for a normal write, or only the levels above a
    /// dominating node for the elimination filter.
    fn propagate_path(&self, path: &[PathNode]) {
        for step in path {
            let node = step.node as usize;
            for _ in 0..2 {
                let old = self.cells[node].load(Ordering::SeqCst);
                let new = self
                    .child_value(step.left)
                    .max(self.child_value(step.right));
                // Node values are monotone (each CAS installs a max of
                // monotone children), so `new >= old` always holds; when
                // they are equal the node already covers everything we
                // just read and the CAS would be a no-op — skip it.
                if new == old {
                    break;
                }
                // A failed CAS means a concurrent propagator updated the
                // node after we read `old`; the second iteration (or that
                // propagator itself) covers our value. Failure ordering
                // is Acquire so the covering write is ordered before our
                // completion (DESIGN.md § Memory orderings).
                if self.cells[node]
                    .compare_exchange(old, new, Ordering::SeqCst, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
            }
        }
    }
}

impl MaxRegister for TreeMaxRegister {
    fn write_max(&self, pid: ProcessId, v: u64) {
        if v == 0 {
            return; // a fresh register already reads 0
        }
        let w = to_word(v);
        // O(1) dominated-write fast path: if the root already carries a
        // value ≥ v, some WriteMax(v') with v' ≥ v has fully propagated,
        // and the root is monotone — every later ReadMax returns ≥ v.
        // Linearize this write immediately after that covering write.
        // This is sound precisely BECAUSE it reads the root, unlike the
        // paper's leaf-based early return (see DESIGN.md § Deviations
        // and § Dominated-write fast path).
        if w <= self.cells[self.tree.root()].load(Ordering::Acquire) {
            return;
        }
        let leaf = self.tree.leaf_for(pid.index(), v);
        // Per-level elimination filter (opt-in): scan our own path
        // top-down, skipping the root (just checked). A path node
        // holding ≥ v witnesses a covering write that propagated at
        // least this far; it is monotone, so climbing the levels above
        // it re-establishes root ≥ v and we can return without ever
        // touching the leaf. The scan reads at most depth(leaf) extra
        // cells when it misses.
        if self.elimination {
            let path = self.tree.path_for(leaf);
            if path.len() > 1 {
                for j in (0..path.len() - 1).rev() {
                    if w <= self.cells[path[j].node as usize].load(Ordering::Acquire) {
                        self.propagate_path(&path[j + 1..]);
                        return;
                    }
                }
            }
        }
        // Relaxed is enough here: for a TR (single-writer) leaf this
        // reads our own last store, and for a TL leaf the branch below
        // never returns early, so nothing is concluded from the value.
        let old = self.cells[leaf].load(Ordering::Relaxed);
        if w <= old {
            // The paper's pseudo-code returns here unconditionally, but
            // that is unsound for shared TL value-leaves: the process
            // that stored `v` may be stalled *before* propagating, in
            // which case returning would complete a WriteMax(v) that no
            // subsequent ReadMax reflects. Help propagate instead; the
            // cost stays O(depth(leaf)) = O(min(log N, log v)). TR
            // leaves are single-writer, so there `w <= old` means our
            // own earlier (completed, hence fully propagated) write
            // already covers us and returning is safe.
            if (v as u128) < self.n() as u128 {
                self.propagate(leaf);
            }
            return;
        }
        // TL value-leaves only ever receive the single value `v`; TR
        // process-leaves are single-writer. Either way a plain store of a
        // strictly larger value is safe. SeqCst: the store must be
        // ordered before the sibling reads in `propagate` (both ours and
        // helpers'); Release would allow the store-buffering reordering
        // that loses the write (DESIGN.md § Memory orderings).
        self.cells[leaf].store(w, Ordering::SeqCst);
        self.propagate(leaf);
    }

    fn read_max(&self) -> u64 {
        // Acquire: ReadMax linearizes at this single load. Covering
        // writes are installed with at-least-Release CASes, the root is
        // monotone, and Acquire synchronizes with the covering write —
        // SeqCst adds nothing a reader can observe (DESIGN.md § Memory
        // orderings).
        from_word(self.cells[self.tree.root()].load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_register_reads_zero() {
        let reg = TreeMaxRegister::new(4);
        assert_eq!(reg.read_max(), 0);
    }

    #[test]
    fn try_new_rejects_degenerate_sizes_with_structured_errors() {
        let err = TreeMaxRegister::try_new(0).unwrap_err();
        assert_eq!(err.n, 0);
        assert_eq!(err.max_processes, MAX_PROCESSES);
        assert!(err.to_string().contains("at least one process"));

        let err = TreeMaxRegister::try_new(MAX_PROCESSES + 1).unwrap_err();
        assert_eq!(err.n, MAX_PROCESSES + 1);
        assert!(err.to_string().contains("MAX_PROCESSES"));

        let reg = TreeMaxRegister::try_new(3).expect("3 processes is fine");
        assert_eq!(reg.n(), 3);
    }

    #[test]
    fn read_returns_maximum_of_writes() {
        let reg = TreeMaxRegister::new(4);
        reg.write_max(ProcessId(0), 5);
        reg.write_max(ProcessId(1), 3);
        assert_eq!(reg.read_max(), 5);
        reg.write_max(ProcessId(2), 9);
        assert_eq!(reg.read_max(), 9);
    }

    #[test]
    fn small_and_large_values_both_propagate() {
        // Small values go through TL, large through TR; both must reach
        // the root.
        let reg = TreeMaxRegister::new(4);
        reg.write_max(ProcessId(0), 2); // TL (2 < 4)
        assert_eq!(reg.read_max(), 2);
        reg.write_max(ProcessId(0), 100); // TR (100 >= 4)
        assert_eq!(reg.read_max(), 100);
    }

    #[test]
    fn write_of_zero_is_a_noop() {
        let reg = TreeMaxRegister::new(2);
        reg.write_max(ProcessId(0), 0);
        assert_eq!(reg.read_max(), 0);
        reg.write_max(ProcessId(0), 4);
        reg.write_max(ProcessId(1), 0);
        assert_eq!(reg.read_max(), 4);
    }

    #[test]
    fn single_process_register_works() {
        let reg = TreeMaxRegister::new(1);
        reg.write_max(ProcessId(0), 10);
        reg.write_max(ProcessId(0), 3);
        assert_eq!(reg.read_max(), 10);
    }

    #[test]
    fn same_process_monotone_sequence() {
        let reg = TreeMaxRegister::new(2);
        for v in 1..=64u64 {
            reg.write_max(ProcessId(0), v);
            assert_eq!(reg.read_max(), v);
        }
    }

    #[test]
    fn dominated_writes_take_the_fast_path() {
        let reg = TreeMaxRegister::new(4);
        reg.write_max(ProcessId(0), 100);
        // All dominated: the root check returns in O(1); TL value
        // leaves, TR leaves and equal values are all covered.
        reg.write_max(ProcessId(1), 1); // TL value leaf
        reg.write_max(ProcessId(2), 50); // TR process leaf
        reg.write_max(ProcessId(3), 100); // equal value
        assert_eq!(reg.read_max(), 100);
        // A fresh maximum still goes through the slow path.
        reg.write_max(ProcessId(1), 101);
        assert_eq!(reg.read_max(), 101);
    }

    #[test]
    fn elimination_register_behaves_like_the_plain_one() {
        let reg = TreeMaxRegister::with_elimination(4);
        assert_eq!(reg.read_max(), 0);
        reg.write_max(ProcessId(0), 2); // TL
        assert_eq!(reg.read_max(), 2);
        reg.write_max(ProcessId(1), 100); // TR
        assert_eq!(reg.read_max(), 100);
        // Dominated writes of every flavour.
        reg.write_max(ProcessId(2), 1); // TL value leaf
        reg.write_max(ProcessId(3), 50); // TR process leaf
        reg.write_max(ProcessId(0), 100); // equal value
        assert_eq!(reg.read_max(), 100);
        reg.write_max(ProcessId(2), 101);
        assert_eq!(reg.read_max(), 101);
    }

    #[test]
    fn elimination_partial_climb_completes_a_stalled_cover() {
        // Force the scenario the per-level check exists for: a covering
        // value sits on an intermediate path node (installed here by
        // hand, as a stalled propagation would leave it) while the root
        // is still behind. The eliminated write must NOT return without
        // first pushing that value the rest of the way up.
        let reg = TreeMaxRegister::with_elimination(4);
        reg.write_max(ProcessId(0), 7); // TR leaf (7 >= 4), fully propagated
        assert_eq!(reg.read_max(), 7);
        // Plant a larger stalled value on the first ancestor of process
        // 1's TR leaf path (as if its writer crashed mid-propagate).
        let leaf = reg.tree.leaf_for(1, 9);
        let first = reg.tree.path_for(leaf)[0].node as usize;
        let planted = to_word(9).max(reg.cells[first].load(Ordering::SeqCst));
        reg.cells[first].store(planted, Ordering::SeqCst);
        assert_eq!(reg.read_max(), 7, "root must still lag");
        // A dominated write (8 ≤ 9) by the same process scans its path,
        // hits the planted node, and climbs only the levels above it.
        reg.write_max(ProcessId(1), 8);
        assert!(
            reg.read_max() >= 9,
            "partial climb must complete the stalled propagation"
        );
    }

    #[test]
    fn concurrent_writers_never_lose_the_maximum_with_elimination() {
        let n = 8;
        let reg = Arc::new(TreeMaxRegister::with_elimination(n));
        let per_thread = 500u64;
        std::thread::scope(|s| {
            for i in 0..n {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    for k in 0..per_thread {
                        let v = k * (n as u64) + i as u64 + 1;
                        reg.write_max(ProcessId(i), v);
                        assert!(reg.read_max() >= v);
                        // Interleave dominated writes to exercise the
                        // scan under contention.
                        reg.write_max(ProcessId(i), v / 2);
                    }
                });
            }
        });
        let expected = (per_thread - 1) * (n as u64) + n as u64;
        assert_eq!(reg.read_max(), expected);
    }

    #[test]
    fn concurrent_writers_never_lose_the_maximum() {
        let n = 8;
        let reg = Arc::new(TreeMaxRegister::new(n));
        let per_thread = 500u64;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for k in 0..per_thread {
                        let v = k * (n as u64) + i as u64 + 1;
                        reg.write_max(ProcessId(i), v);
                        // Reads must never regress below our own writes.
                        assert!(reg.read_max() >= v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected = (per_thread - 1) * (n as u64) + n as u64;
        assert_eq!(reg.read_max(), expected);
    }

    #[test]
    fn concurrent_readers_see_monotone_values() {
        let reg = Arc::new(TreeMaxRegister::new(4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = reg.read_max();
                        assert!(v >= last, "regressed from {last} to {v}");
                        last = v;
                    }
                })
            })
            .collect();
        for v in 1..=2000u64 {
            reg.write_max(ProcessId(0), v);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(reg.read_max(), 2000);
    }
}
