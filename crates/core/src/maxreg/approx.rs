//! k-multiplicative-accurate max register (Hendler–Khattabi–Milani,
//! arXiv 2104.09902).
//!
//! Values are bucketed by powers of the accuracy factor `k`:
//! `WriteMax(v)` with `v ≥ 1` stores only the *bucket index*
//! `e = ⌊log_k v⌋` (encoded as `e + 1`, with `0` meaning "nothing
//! written"), and `ReadMax` returns the bucket floor `k^e`. Since
//! `k^e ≤ v < k^(e+1)`, a read returning `r` satisfies
//!
//! ```text
//! r ≤ M ≤ k · r
//! ```
//!
//! for the true maximum `M` — never an overestimate, an underestimate
//! by at most the factor `k`. Bucketing collapses the register's value
//! domain from `M` values to `⌊log_k M⌋ + 2` codes, which is what buys
//! the HKM bound: the whole register is **one** exact single-cell max
//! register over a logarithmic domain, so `WriteMax` needs no tree walk
//! at all — one load (dominated-write fast path) plus a CAS on the rare
//! bucket-boundary crossings, against Algorithm A's
//! `O(min(log N, log v))` per *every* exact write.
//!
//! At `k = 1` the bucket of `v` is `v` itself: the code cell stores the
//! exact value and the object reduces to the exact
//! [`CasRetryMaxRegister`](crate::maxreg::CasRetryMaxRegister) bit for
//! bit.

use std::fmt;
use std::sync::atomic::Ordering;

use ruo_sim::stepcount::CountingU64;
use ruo_sim::{cas, done, read, Machine, Memory, ObjId, ProcessId, Step, Word};

use super::sim::SimMaxRegister;
use crate::pad::CachePadded;
use crate::traits::MaxRegister;
use crate::value::MAX_VALUE;

/// Encodes `v ≥ 1` as the stored code: `v` itself at `k = 1`, otherwise
/// `⌊log_k v⌋ + 1` (code `0` is reserved for "nothing written").
#[inline]
fn encode(v: u64, k: u64) -> u64 {
    debug_assert!(v >= 1 && k >= 1);
    if k == 1 {
        return v;
    }
    let mut e = 0u64;
    let mut x = v;
    while x >= k {
        x /= k;
        e += 1;
    }
    e + 1
}

/// Decodes a stored code back to the public value: `0` for "nothing
/// written", `code` itself at `k = 1`, otherwise the bucket floor
/// `k^(code - 1)`.
#[inline]
fn decode(code: u64, k: u64) -> u64 {
    if code == 0 || k == 1 {
        return code;
    }
    // k^(code-1) ≤ the value that produced the code, so this cannot
    // overflow for codes produced by `encode`.
    let mut r = 1u64;
    for _ in 0..code - 1 {
        r *= k;
    }
    r
}

/// k-multiplicative-accurate max register: a single exact max cell over
/// the `O(log_k M)` bucket codes. `ReadMax` is one load; `WriteMax` is
/// one load when dominated (the common case — any same-bucket or larger
/// write covers it) and a CAS retry otherwise.
///
/// ```
/// use ruo_core::maxreg::ApproxMaxRegister;
/// use ruo_core::MaxRegister;
/// use ruo_sim::ProcessId;
///
/// let reg = ApproxMaxRegister::new(2); // k = 2
/// reg.write_max(ProcessId(0), 13);
/// let r = reg.read_max();
/// assert!(r <= 13 && 2 * r >= 13);
/// assert_eq!(r, 8); // bucket floor 2^3
/// ```
pub struct ApproxMaxRegister {
    /// The bucket-code cell; `0` = nothing written.
    cell: CachePadded<CountingU64>,
    k: u64,
}

impl fmt::Debug for ApproxMaxRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ApproxMaxRegister")
            .field("k", &self.k)
            .field("value", &self.read_max())
            .finish()
    }
}

impl ApproxMaxRegister {
    /// Creates a register reading `0` with accuracy factor `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: u64) -> Self {
        assert!(k >= 1, "accuracy factor k must be >= 1");
        ApproxMaxRegister {
            cell: CachePadded::new(CountingU64::new(0)),
            k,
        }
    }

    /// The accuracy factor.
    pub fn k(&self) -> u64 {
        self.k
    }
}

impl MaxRegister for ApproxMaxRegister {
    fn write_max(&self, _pid: ProcessId, v: u64) {
        if v == 0 {
            return;
        }
        assert!(v <= MAX_VALUE, "value {v} exceeds MAX_VALUE");
        let code = encode(v, self.k);
        // Same single-cell discipline as CasRetryMaxRegister: the cell's
        // modification order is the linearization order, and returning
        // on `cur >= code` is sound because the observed covering write
        // already placed the true maximum in our bucket or above.
        let mut cur = self.cell.load(Ordering::Acquire);
        while cur < code {
            match self
                .cell
                .compare_exchange(cur, code, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    fn read_max(&self) -> u64 {
        decode(self.cell.load(Ordering::Acquire), self.k)
    }
}

/// The k-accurate max register as step machines: `ReadMax` is exactly 1
/// step; `WriteMax` is 1 step when dominated, `1 + 2·retries` otherwise
/// (lock-free, like the real face).
#[derive(Debug)]
pub struct SimApproxMaxRegister {
    cell: ObjId,
    n: usize,
    k: u64,
}

impl SimApproxMaxRegister {
    /// Allocates the code cell (`0`) in `mem` for `n` processes with
    /// accuracy factor `k`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    pub fn new(mem: &mut Memory, n: usize, k: u64) -> Self {
        assert!(n >= 1, "at least one process required");
        assert!(k >= 1, "accuracy factor k must be >= 1");
        SimApproxMaxRegister {
            cell: mem.alloc(0),
            n,
            k,
        }
    }

    /// The accuracy factor.
    pub fn k(&self) -> u64 {
        self.k
    }
}

/// One write attempt: read the cell, return if dominated, CAS the code
/// in otherwise, retrying from the read on interference.
fn write_attempt(cell: ObjId, code: Word) -> Step {
    read(cell, move |cur| {
        if cur >= code {
            done(0)
        } else {
            cas(cell, cur, code, move |ok| {
                if ok == 1 {
                    done(0)
                } else {
                    write_attempt(cell, code)
                }
            })
        }
    })
}

impl SimMaxRegister for SimApproxMaxRegister {
    fn n(&self) -> usize {
        self.n
    }

    fn write_max(&self, _pid: ProcessId, v: u64) -> Machine {
        if v == 0 {
            return Machine::completed(0);
        }
        let code = encode(v, self.k) as Word;
        Machine::new(write_attempt(self.cell, code))
    }

    fn read_max(&self, _pid: ProcessId) -> Machine {
        let k = self.k;
        Machine::new(read(self.cell, move |code| {
            done(decode(code as u64, k) as Word)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_register_reads_zero() {
        assert_eq!(ApproxMaxRegister::new(4).read_max(), 0);
    }

    #[test]
    fn k1_is_exact() {
        let reg = ApproxMaxRegister::new(1);
        reg.write_max(ProcessId(0), 10);
        reg.write_max(ProcessId(1), 3);
        assert_eq!(reg.read_max(), 10);
        reg.write_max(ProcessId(0), 11);
        assert_eq!(reg.read_max(), 11);
    }

    #[test]
    fn reads_stay_in_the_k_envelope() {
        for k in [2u64, 3, 7] {
            let reg = ApproxMaxRegister::new(k);
            let mut max = 0u64;
            let mut v = 1u64;
            for _ in 0..40 {
                reg.write_max(ProcessId(0), v);
                max = max.max(v);
                let r = reg.read_max();
                assert!(r <= max, "overestimate at k={k}: {r} > {max}");
                assert!(
                    (r as u128) * (k as u128) >= max as u128,
                    "drift past k={k}: {r} vs {max}"
                );
                v = v.wrapping_mul(3).wrapping_add(1) % 1_000_000 + 1;
            }
        }
    }

    #[test]
    fn bucket_floors_are_powers_of_k() {
        let reg = ApproxMaxRegister::new(2);
        reg.write_max(ProcessId(0), 13);
        assert_eq!(reg.read_max(), 8);
        reg.write_max(ProcessId(0), 15); // same bucket — dominated
        assert_eq!(reg.read_max(), 8);
        reg.write_max(ProcessId(0), 16); // next bucket
        assert_eq!(reg.read_max(), 16);
    }

    #[test]
    fn encode_decode_round_trip_properties() {
        for k in [1u64, 2, 3, 10] {
            for v in [1u64, 2, 9, 10, 11, 99, 100, 101, 1 << 40, MAX_VALUE] {
                let r = decode(encode(v, k), k);
                assert!((1..=v).contains(&r), "k={k} v={v} r={r}");
                assert!(
                    (r as u128) * (k as u128) > v as u128 - 1,
                    "k={k} v={v} r={r}"
                );
            }
        }
    }

    #[test]
    fn reads_are_monotone_under_concurrency() {
        let reg = Arc::new(ApproxMaxRegister::new(3));
        std::thread::scope(|s| {
            for i in 0..4usize {
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    for v in 1..2000u64 {
                        reg.write_max(ProcessId(i), v * 4 + i as u64);
                    }
                });
            }
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                let mut last = 0;
                for _ in 0..5000 {
                    let r = reg.read_max();
                    assert!(r >= last, "regressed from {last} to {r}");
                    last = r;
                }
            });
        });
        let max = 1999 * 4 + 3;
        let r = reg.read_max();
        assert!(r <= max && r * 3 >= max);
    }

    fn run_solo(mem: &mut Memory, m: Machine) -> (Word, usize) {
        let mut m = m;
        while let Some(prim) = m.enabled() {
            let resp = mem.apply(ProcessId(0), prim);
            m.feed(resp);
        }
        (m.result().expect("completed"), m.steps())
    }

    #[test]
    fn sim_face_matches_real_semantics() {
        let mut mem = Memory::new();
        let reg = SimApproxMaxRegister::new(&mut mem, 2, 2);
        let (r, steps) = run_solo(&mut mem, reg.read_max(ProcessId(0)));
        assert_eq!((r, steps), (0, 1));
        let (_, steps) = run_solo(&mut mem, reg.write_max(ProcessId(0), 13));
        assert_eq!(steps, 2, "fresh write: read + CAS");
        let (_, steps) = run_solo(&mut mem, reg.write_max(ProcessId(1), 9));
        assert_eq!(steps, 1, "dominated write is one read");
        let (r, steps) = run_solo(&mut mem, reg.read_max(ProcessId(1)));
        assert_eq!((r, steps), (8, 1));
    }

    #[test]
    fn sim_write_zero_is_free() {
        let mut mem = Memory::new();
        let reg = SimApproxMaxRegister::new(&mut mem, 1, 2);
        let (_, steps) = run_solo(&mut mem, reg.write_max(ProcessId(0), 0));
        assert_eq!(steps, 0);
    }
}
