//! The f-array max register (Jayanti, PODC 2002) — the construction the
//! paper credits for `O(1)`-read counters/snapshots and contrasts with
//! Algorithm A.
//!
//! One single-writer slot per process holding that process's largest
//! written value; the tree aggregates with `max`. `ReadMax` is one root
//! load; `WriteMax(v)` is a slot update plus `O(log N)` double-CAS
//! propagation — **always** `O(log N)`, with no Bentley–Yao shortcut
//! for small values. That missing shortcut is precisely what Algorithm
//! A's B1 subtree adds: compare `FArrayMaxRegister` (write cost flat in
//! `v`) against [`super::TreeMaxRegister`] (write cost `O(min(log N,
//! log v))`) in the benches.

use std::fmt;

use ruo_sim::ProcessId;

use crate::farray::{FArray, Max};
use crate::traits::MaxRegister;
use crate::value::{to_word, MAX_VALUE};

/// Jayanti-style max register: `O(1)` `ReadMax`, `O(log N)` `WriteMax`
/// (regardless of the value), wait-free, from read/write/CAS.
///
/// ```
/// use ruo_core::maxreg::FArrayMaxRegister;
/// use ruo_core::MaxRegister;
/// use ruo_sim::ProcessId;
///
/// let reg = FArrayMaxRegister::new(4);
/// reg.write_max(ProcessId(0), 9);
/// reg.write_max(ProcessId(3), 4);
/// assert_eq!(reg.read_max(), 9);
/// ```
pub struct FArrayMaxRegister {
    fa: FArray<Max>,
}

impl fmt::Debug for FArrayMaxRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FArrayMaxRegister")
            .field("value", &self.read_max())
            .finish()
    }
}

impl FArrayMaxRegister {
    /// Creates a register shared by `n` processes; reads `0` until
    /// written.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        FArrayMaxRegister {
            fa: FArray::<Max>::new(n),
        }
    }

    /// Number of processes sharing the register.
    pub fn n(&self) -> usize {
        self.fa.n()
    }
}

impl MaxRegister for FArrayMaxRegister {
    fn write_max(&self, pid: ProcessId, v: u64) {
        assert!(v <= MAX_VALUE, "value {v} exceeds MAX_VALUE");
        let w = to_word(v);
        // Per-slot maximum keeps the slot monotone, as FArray<Max>
        // requires; a dominated write still skips cheaply (the slot
        // already covers it and, being single-writer, our own earlier
        // completed write has propagated).
        if w > self.fa.slot(pid) {
            self.fa.update(pid, w);
        }
    }

    fn read_max(&self) -> u64 {
        let v = self.fa.read();
        if v < 0 {
            0
        } else {
            v as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_register_reads_zero() {
        assert_eq!(FArrayMaxRegister::new(3).read_max(), 0);
    }

    #[test]
    fn keeps_the_maximum() {
        let reg = FArrayMaxRegister::new(3);
        reg.write_max(ProcessId(0), 5);
        reg.write_max(ProcessId(1), 12);
        reg.write_max(ProcessId(2), 7);
        assert_eq!(reg.read_max(), 12);
    }

    #[test]
    fn dominated_own_write_is_skipped() {
        let reg = FArrayMaxRegister::new(2);
        reg.write_max(ProcessId(0), 9);
        reg.write_max(ProcessId(0), 3); // own slot already covers it
        assert_eq!(reg.read_max(), 9);
    }

    #[test]
    fn concurrent_writers_converge_to_maximum() {
        let n = 8;
        let reg = Arc::new(FArrayMaxRegister::new(n));
        let handles: Vec<_> = (0..n)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for k in 0..1000u64 {
                        let v = k * n as u64 + t as u64;
                        reg.write_max(ProcessId(t), v);
                        assert!(reg.read_max() >= v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.read_max(), 999 * n as u64 + n as u64 - 1);
    }

    #[test]
    fn reads_are_monotone() {
        let reg = Arc::new(FArrayMaxRegister::new(2));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = 0;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let v = reg.read_max();
                    assert!(v >= last);
                    last = v;
                }
            })
        };
        for v in 1..=3000 {
            reg.write_max(ProcessId(0), v);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(reg.read_max(), 3000);
    }
}
