//! Mutex-protected max register — the blocking baseline.
//!
//! Not part of the paper's model (locks are not wait-free or even
//! obstruction-free), but the natural "first thing one would write";
//! included so the wall-clock benchmarks show what the lock-free
//! structures are being compared against in practice.

use std::fmt;
use std::sync::Mutex;

use ruo_sim::ProcessId;

use crate::traits::MaxRegister;
use crate::value::MAX_VALUE;

/// Blocking max register: one mutex-protected word.
///
/// ```
/// use ruo_core::maxreg::LockMaxRegister;
/// use ruo_core::MaxRegister;
/// use ruo_sim::ProcessId;
///
/// let reg = LockMaxRegister::new();
/// reg.write_max(ProcessId(0), 4);
/// assert_eq!(reg.read_max(), 4);
/// ```
#[derive(Default)]
pub struct LockMaxRegister {
    value: Mutex<u64>,
}

impl fmt::Debug for LockMaxRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockMaxRegister")
            .field("value", &*self.value.lock().unwrap())
            .finish()
    }
}

impl LockMaxRegister {
    /// Creates a register reading `0`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MaxRegister for LockMaxRegister {
    fn write_max(&self, _pid: ProcessId, v: u64) {
        assert!(v <= MAX_VALUE, "value {v} exceeds MAX_VALUE");
        let mut guard = self.value.lock().unwrap();
        if v > *guard {
            *guard = v;
        }
    }

    fn read_max(&self) -> u64 {
        *self.value.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn keeps_the_maximum() {
        let reg = LockMaxRegister::new();
        reg.write_max(ProcessId(0), 2);
        reg.write_max(ProcessId(1), 9);
        reg.write_max(ProcessId(0), 4);
        assert_eq!(reg.read_max(), 9);
    }

    #[test]
    fn concurrent_use_is_safe() {
        let reg = Arc::new(LockMaxRegister::new());
        let handles: Vec<_> = (0..4usize)
            .map(|i| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for k in 0..500u64 {
                        reg.write_max(ProcessId(i), k * 4 + i as u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.read_max(), 499 * 4 + 3);
    }
}
