//! The obvious single-cell max register: a CAS retry loop.
//!
//! `ReadMax` is one load; `WriteMax(v)` reads the cell and CASes `v` in
//! if it is larger, retrying on interference. Both operations are `O(1)`
//! steps *when run solo* — but the write is only **lock-free**, not
//! wait-free: an unlucky writer can be starved by faster writers forever.
//! The paper's tradeoffs are about *wait-free / obstruction-free
//! worst-case step complexity*, which this baseline sidesteps rather than
//! beats; it exists to anchor the benchmarks at "what a single CAS cell
//! buys you".

use std::fmt;
use std::sync::atomic::Ordering;

use ruo_sim::stepcount::CountingU64;
use ruo_sim::ProcessId;

use crate::pad::CachePadded;
use crate::traits::MaxRegister;
use crate::value::MAX_VALUE;

/// Lock-free single-cell max register (CAS retry loop).
///
/// ```
/// use ruo_core::maxreg::CasRetryMaxRegister;
/// use ruo_core::MaxRegister;
/// use ruo_sim::ProcessId;
///
/// let reg = CasRetryMaxRegister::new();
/// reg.write_max(ProcessId(0), 12);
/// reg.write_max(ProcessId(1), 5);
/// assert_eq!(reg.read_max(), 12);
/// ```
#[derive(Default)]
pub struct CasRetryMaxRegister {
    /// Padded so the register never false-shares with whatever the
    /// embedding structure allocates next to it.
    cell: CachePadded<CountingU64>,
}

impl fmt::Debug for CasRetryMaxRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CasRetryMaxRegister")
            .field("value", &self.cell.load(Ordering::Relaxed))
            .finish()
    }
}

impl CasRetryMaxRegister {
    /// Creates a register reading `0`.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MaxRegister for CasRetryMaxRegister {
    fn write_max(&self, _pid: ProcessId, v: u64) {
        assert!(v <= MAX_VALUE, "value {v} exceeds MAX_VALUE");
        // Single-cell object: every operation is one atomic access, so
        // AcqRel/Acquire suffice — the cell's modification order is the
        // linearization order (DESIGN.md § Memory orderings). Returning
        // on `cur >= v` is sound because the Acquire load orders the
        // observed covering write before our completion.
        let mut cur = self.cell.load(Ordering::Acquire);
        while cur < v {
            match self
                .cell
                .compare_exchange(cur, v, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    fn read_max(&self) -> u64 {
        self.cell.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn keeps_the_maximum() {
        let reg = CasRetryMaxRegister::new();
        reg.write_max(ProcessId(0), 10);
        reg.write_max(ProcessId(1), 3);
        assert_eq!(reg.read_max(), 10);
        reg.write_max(ProcessId(0), 11);
        assert_eq!(reg.read_max(), 11);
    }

    #[test]
    fn fresh_register_reads_zero() {
        assert_eq!(CasRetryMaxRegister::new().read_max(), 0);
    }

    #[test]
    fn concurrent_writes_converge() {
        let reg = Arc::new(CasRetryMaxRegister::new());
        let handles: Vec<_> = (0..8usize)
            .map(|i| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for k in 0..1000u64 {
                        reg.write_max(ProcessId(i), k * 8 + i as u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.read_max(), 999 * 8 + 7);
    }
}
