//! The Aspnes–Attiya–Censor (AAC) bounded max register from reads and
//! writes only [JACM 2012, previously PODC 2009].
//!
//! An `M`-bounded register is a recursive switch tree: the root has a
//! one-bit `switch` register, a left child that is an `⌈M/2⌉`-bounded
//! register (values `0 .. ⌈M/2⌉`) and a right child that is an
//! `⌊M/2⌋`-bounded register (values `⌈M/2⌉ .. M`, stored shifted).
//! `WriteMax(v)` descends: values in the upper half are written to the
//! right child and then the switch is set; values in the lower half are
//! written to the left child only if the switch is still unset (a set
//! switch means some larger value was already written, so the small
//! write is already dominated). `ReadMax` descends right if the switch
//! is set, left otherwise. No value cells exist at all — the value is
//! encoded entirely by the switch path. Both operations take
//! `O(log M)` steps, which the paper proves optimal for reads; this
//! implementation is the read/write-only baseline that Algorithm A's
//! `O(1)` reads are compared against.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

use ruo_sim::stepcount;
use ruo_sim::ProcessId;

use crate::traits::MaxRegister;

/// Hard cap on the register capacity.
///
/// The switch tree materializes **eagerly**: a capacity-`M` register
/// allocates `2M − 1` [`AacNode`]s (64 bytes each) plus `M − 1` one-byte
/// switches up front — roughly `128 · M` bytes, about 8 GiB at this cap.
/// Use [`AacMaxRegister::try_new`] to detect oversized capacities
/// gracefully instead of panicking; see
/// [`AacShape::estimated_bytes`] for the footprint a given capacity
/// implies.
pub const MAX_CAPACITY: u64 = 1 << 26;

/// One node of the AAC switch tree.
#[derive(Clone, Copy, Debug)]
pub struct AacNode {
    /// Number of representable values in this subregister.
    pub cap: u64,
    /// Split point: `⌈cap/2⌉`. Values `>= half` go right (shifted down
    /// by `half`), values `< half` go left.
    pub half: u64,
    /// Left child (capacity `half`), `None` at unit leaves.
    pub left: Option<usize>,
    /// Right child (capacity `cap − half`), `None` at unit leaves.
    pub right: Option<usize>,
    /// Index of this node's switch register, `None` at unit leaves.
    pub switch: Option<usize>,
}

/// The static shape of an AAC register: the switch-tree arena, shared by
/// the real-atomics implementation and the simulator step machines.
#[derive(Clone)]
pub struct AacShape {
    nodes: Vec<AacNode>,
    root: usize,
    capacity: u64,
    switches: usize,
}

impl fmt::Debug for AacShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AacShape")
            .field("capacity", &self.capacity)
            .field("nodes", &self.nodes.len())
            .field("switches", &self.switches)
            .finish()
    }
}

impl AacShape {
    /// Approximate heap footprint (bytes) of the eagerly materialized
    /// switch tree for `capacity`: `2·capacity − 1` nodes plus
    /// `capacity − 1` switch bytes.
    pub fn estimated_bytes(capacity: u64) -> u64 {
        capacity
            .saturating_mul(2)
            .saturating_mul(std::mem::size_of::<AacNode>() as u64)
            .saturating_add(capacity)
    }

    /// Builds the balanced switch tree for values `0 .. capacity`:
    /// every value at depth `⌈log₂ capacity⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `0` or exceeds [`MAX_CAPACITY`] — the
    /// tree is materialized eagerly, so capacities near the cap already
    /// commit gigabytes (see [`AacShape::estimated_bytes`]).
    pub fn new(capacity: u64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        assert!(
            capacity <= MAX_CAPACITY,
            "capacity {capacity} exceeds MAX_CAPACITY ({MAX_CAPACITY}): the switch tree \
             materializes eagerly and would need ~{} MiB",
            AacShape::estimated_bytes(capacity) >> 20
        );
        let mut shape = AacShape {
            nodes: Vec::new(),
            root: 0,
            capacity,
            switches: 0,
        };
        shape.root = shape.build(capacity);
        shape
    }

    /// Builds a Bentley–Yao-skewed switch tree for values
    /// `0 .. capacity`: a rightward spine whose `g`-th node hangs a
    /// balanced subregister of `2^g` values off its left side, so value
    /// `v` sits at depth `O(log v)` instead of `O(log capacity)`.
    ///
    /// This is the read/write-only analogue of Algorithm A's B1 left
    /// subtree: operations on an unbalanced register cost
    /// `O(min(log capacity, log v))` — writes of `v` *and* reads while
    /// the maximum is `v`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is `0` or exceeds [`MAX_CAPACITY`] (same
    /// eager-materialization concern as [`AacShape::new`]).
    pub fn new_unbalanced(capacity: u64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        assert!(
            capacity <= MAX_CAPACITY,
            "capacity {capacity} exceeds MAX_CAPACITY ({MAX_CAPACITY}): the switch tree \
             materializes eagerly and would need ~{} MiB",
            AacShape::estimated_bytes(capacity) >> 20
        );
        let mut shape = AacShape {
            nodes: Vec::new(),
            root: 0,
            capacity,
            switches: 0,
        };
        shape.root = shape.build_unbalanced(capacity, 1);
        shape
    }

    fn build_unbalanced(&mut self, cap: u64, group: u64) -> usize {
        if cap <= 1 {
            return self.build(cap);
        }
        let half = group.min(cap - 1);
        let left = self.build(half);
        let right = self.build_unbalanced(cap - half, group * 2);
        let switch = self.switches;
        self.switches += 1;
        self.nodes.push(AacNode {
            cap,
            half,
            left: Some(left),
            right: Some(right),
            switch: Some(switch),
        });
        self.nodes.len() - 1
    }

    /// Depth of the switch path that encodes value `v` — the step cost
    /// of writing `v` (and of reading while `v` is the maximum).
    ///
    /// # Panics
    ///
    /// Panics if `v >= capacity`.
    pub fn value_depth(&self, v: u64) -> usize {
        assert!(v < self.capacity, "value {v} out of bounds");
        let mut idx = self.root;
        let mut v = v;
        let mut depth = 0;
        loop {
            let node = self.nodes[idx];
            let (Some(left), Some(right), Some(_)) = (node.left, node.right, node.switch) else {
                return depth;
            };
            depth += 1;
            if v >= node.half {
                v -= node.half;
                idx = right;
            } else {
                idx = left;
            }
        }
    }

    fn build(&mut self, cap: u64) -> usize {
        if cap <= 1 {
            self.nodes.push(AacNode {
                cap,
                half: 0,
                left: None,
                right: None,
                switch: None,
            });
            return self.nodes.len() - 1;
        }
        let half = cap.div_ceil(2);
        let left = self.build(half);
        let right = self.build(cap - half);
        let switch = self.switches;
        self.switches += 1;
        self.nodes.push(AacNode {
            cap,
            half,
            left: Some(left),
            right: Some(right),
            switch: Some(switch),
        });
        self.nodes.len() - 1
    }

    /// The root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Node accessor.
    pub fn node(&self, idx: usize) -> &AacNode {
        &self.nodes[idx]
    }

    /// Number of one-bit switch registers.
    pub fn switch_count(&self) -> usize {
        self.switches
    }

    /// The register's capacity `M` (legal values are `0 .. M`).
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Depth of the switch tree — the step complexity of both operations.
    pub fn depth(&self) -> usize {
        fn d(shape: &AacShape, idx: usize) -> usize {
            let n = shape.node(idx);
            match (n.left, n.right) {
                (Some(l), Some(r)) => 1 + d(shape, l).max(d(shape, r)),
                _ => 0,
            }
        }
        d(self, self.root)
    }
}

/// The AAC `M`-bounded max register from reads and writes only:
/// `O(log M)` `ReadMax` and `WriteMax`, wait-free.
///
/// ```
/// use ruo_core::maxreg::AacMaxRegister;
/// use ruo_core::MaxRegister;
/// use ruo_sim::ProcessId;
///
/// let reg = AacMaxRegister::new(1024); // values 0..1024
/// reg.write_max(ProcessId(0), 100);
/// reg.write_max(ProcessId(1), 517);
/// assert_eq!(reg.read_max(), 517);
/// ```
pub struct AacMaxRegister {
    shape: AacShape,
    switches: Box<[AtomicU8]>,
}

impl fmt::Debug for AacMaxRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AacMaxRegister")
            .field("capacity", &self.shape.capacity())
            .finish()
    }
}

/// Error returned by [`AacMaxRegister::try_new`] /
/// [`AacMaxRegister::try_new_unbalanced`] when the requested capacity is
/// zero or large enough that eagerly materializing the switch tree
/// would commit an unreasonable amount of memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapacityError {
    /// The rejected capacity.
    pub capacity: u64,
    /// The hard cap ([`MAX_CAPACITY`]).
    pub max_capacity: u64,
    /// Approximate bytes the switch tree for `capacity` would allocate.
    pub estimated_bytes: u64,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.capacity == 0 {
            write!(f, "AAC capacity must be positive")
        } else {
            write!(
                f,
                "AAC capacity {} exceeds MAX_CAPACITY ({}): the switch tree materializes \
                 eagerly and would allocate ~{} MiB up front",
                self.capacity,
                self.max_capacity,
                self.estimated_bytes >> 20
            )
        }
    }
}

impl std::error::Error for CapacityError {}

/// Error returned by [`AacMaxRegister::try_write_max`] when the value
/// does not fit the register's bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValueExceedsBound {
    /// The rejected value.
    pub value: u64,
    /// The register's capacity.
    pub capacity: u64,
}

impl fmt::Display for ValueExceedsBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {} exceeds the register bound (capacity {})",
            self.value, self.capacity
        )
    }
}

impl std::error::Error for ValueExceedsBound {}

impl AacMaxRegister {
    /// Creates an `M`-bounded register accepting values `0 .. capacity`,
    /// with the balanced shape (`O(log M)` for both operations).
    ///
    /// # Panics
    ///
    /// Panics (with the estimated memory footprint in the message) if
    /// `capacity` is `0` or exceeds [`MAX_CAPACITY`]; use
    /// [`try_new`](AacMaxRegister::try_new) to handle oversized
    /// capacities gracefully.
    pub fn new(capacity: u64) -> Self {
        Self::try_new(capacity).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`new`](AacMaxRegister::new): rejects a zero or
    /// over-cap capacity with a [`CapacityError`] (carrying the
    /// estimated eager-allocation size) instead of panicking.
    ///
    /// ```
    /// use ruo_core::maxreg::AacMaxRegister;
    ///
    /// assert!(AacMaxRegister::try_new(1024).is_ok());
    /// let err = AacMaxRegister::try_new(u64::MAX).unwrap_err();
    /// assert!(err.estimated_bytes > 1 << 30);
    /// ```
    pub fn try_new(capacity: u64) -> Result<Self, CapacityError> {
        Self::check_capacity(capacity)?;
        Ok(Self::with_shape(AacShape::new(capacity)))
    }

    /// Fallible form of
    /// [`new_unbalanced`](AacMaxRegister::new_unbalanced).
    pub fn try_new_unbalanced(capacity: u64) -> Result<Self, CapacityError> {
        Self::check_capacity(capacity)?;
        Ok(Self::with_shape(AacShape::new_unbalanced(capacity)))
    }

    fn check_capacity(capacity: u64) -> Result<(), CapacityError> {
        if (1..=MAX_CAPACITY).contains(&capacity) {
            Ok(())
        } else {
            Err(CapacityError {
                capacity,
                max_capacity: MAX_CAPACITY,
                estimated_bytes: AacShape::estimated_bytes(capacity),
            })
        }
    }

    /// Creates an `M`-bounded register with the Bentley–Yao-skewed shape:
    /// operations involving value `v` cost `O(min(log M, log v))` — cheap
    /// while the register's contents are small.
    ///
    /// ```
    /// use ruo_core::maxreg::AacMaxRegister;
    /// use ruo_core::MaxRegister;
    /// use ruo_sim::ProcessId;
    ///
    /// let reg = AacMaxRegister::new_unbalanced(1 << 20);
    /// reg.write_max(ProcessId(0), 3); // ~2 switch accesses, not 20
    /// assert_eq!(reg.read_max(), 3);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics (with the estimated memory footprint in the message) if
    /// `capacity` is `0` or exceeds [`MAX_CAPACITY`]; use
    /// [`try_new_unbalanced`](AacMaxRegister::try_new_unbalanced) to
    /// handle oversized capacities gracefully.
    pub fn new_unbalanced(capacity: u64) -> Self {
        Self::try_new_unbalanced(capacity).unwrap_or_else(|e| panic!("{e}"))
    }

    fn with_shape(shape: AacShape) -> Self {
        let switches = (0..shape.switch_count())
            .map(|_| AtomicU8::new(0))
            .collect();
        AacMaxRegister { shape, switches }
    }

    /// The register's capacity `M`.
    pub fn capacity(&self) -> u64 {
        self.shape.capacity()
    }

    /// The shared switch-tree shape.
    pub fn shape(&self) -> &AacShape {
        &self.shape
    }

    fn switch_is_set(&self, idx: usize) -> bool {
        // Switches are `AtomicU8`, outside `CountingU64`; count the
        // primitive by hand so step tallies match the paper's measure.
        stepcount::count_read();
        // Acquire pairs with the Release store in `descend_write`: a set
        // switch publishes every deeper switch the writer set before it
        // (classic message passing — DESIGN.md § Memory orderings).
        self.switches[idx].load(Ordering::Acquire) != 0
    }

    /// Writes `v` if it fits the bound.
    ///
    /// # Errors
    ///
    /// Returns [`ValueExceedsBound`] if `v >= capacity`.
    pub fn try_write_max(&self, v: u64) -> Result<(), ValueExceedsBound> {
        if v >= self.shape.capacity() {
            return Err(ValueExceedsBound {
                value: v,
                capacity: self.shape.capacity(),
            });
        }
        self.descend_write(self.shape.root(), v);
        Ok(())
    }

    fn descend_write(&self, mut idx: usize, v: u64) {
        loop {
            let node = *self.shape.node(idx);
            let (Some(left), Some(right), Some(switch)) = (node.left, node.right, node.switch)
            else {
                return; // unit leaf: value 0, nothing to store
            };
            if v >= node.half {
                // Descend right with the shifted value, then set the
                // switch — the order matters: once the switch is set,
                // readers go right and must find the value there.
                // Release publishes the deeper switches to the Acquire
                // load in `switch_is_set`.
                self.descend_write(right, v - node.half);
                stepcount::count_write();
                self.switches[switch].store(1, Ordering::Release);
                return;
            }
            // Lower half: only meaningful while the switch is unset.
            if self.switch_is_set(switch) {
                return;
            }
            idx = left;
        }
    }

    fn read_from(&self, mut idx: usize) -> u64 {
        let mut base = 0u64;
        loop {
            let node = *self.shape.node(idx);
            let (Some(left), Some(right), Some(switch)) = (node.left, node.right, node.switch)
            else {
                return base;
            };
            if self.switch_is_set(switch) {
                base += node.half;
                idx = right;
            } else {
                idx = left;
            }
        }
    }
}

impl MaxRegister for AacMaxRegister {
    /// # Panics
    ///
    /// Panics if `v` exceeds the register's bound; use
    /// [`try_write_max`](AacMaxRegister::try_write_max) to handle the
    /// bound gracefully.
    fn write_max(&self, _pid: ProcessId, v: u64) {
        self.try_write_max(v)
            .expect("value exceeds the AAC register bound");
    }

    fn read_max(&self) -> u64 {
        self.read_from(self.shape.root())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shape_counts_match_capacity() {
        let shape = AacShape::new(8);
        assert_eq!(shape.switch_count(), 7);
        assert_eq!(shape.capacity(), 8);
        assert_eq!(shape.depth(), 3);
    }

    #[test]
    fn shape_handles_non_power_of_two() {
        let shape = AacShape::new(5);
        assert_eq!(shape.switch_count(), 4);
        assert!(shape.depth() <= 3);
    }

    #[test]
    fn unit_register_only_holds_zero() {
        let reg = AacMaxRegister::new(1);
        assert_eq!(reg.read_max(), 0);
        reg.write_max(ProcessId(0), 0);
        assert_eq!(reg.read_max(), 0);
        assert!(reg.try_write_max(1).is_err());
    }

    #[test]
    fn sequential_max_semantics() {
        let reg = AacMaxRegister::new(64);
        assert_eq!(reg.read_max(), 0);
        reg.write_max(ProcessId(0), 17);
        assert_eq!(reg.read_max(), 17);
        reg.write_max(ProcessId(0), 5);
        assert_eq!(reg.read_max(), 17);
        reg.write_max(ProcessId(0), 63);
        assert_eq!(reg.read_max(), 63);
    }

    #[test]
    fn every_value_round_trips() {
        for cap in [1u64, 2, 3, 7, 8, 9, 31, 32, 33] {
            for v in 0..cap {
                let reg = AacMaxRegister::new(cap);
                reg.write_max(ProcessId(0), v);
                assert_eq!(reg.read_max(), v, "cap={cap} v={v}");
            }
        }
    }

    #[test]
    fn try_new_rejects_oversized_capacities() {
        let err = AacMaxRegister::try_new(MAX_CAPACITY + 1).unwrap_err();
        assert_eq!(err.capacity, MAX_CAPACITY + 1);
        assert_eq!(err.max_capacity, MAX_CAPACITY);
        assert!(err.estimated_bytes > 1 << 30);
        assert!(err.to_string().contains("MiB"));
        assert!(AacMaxRegister::try_new(0).is_err());
        assert!(AacMaxRegister::try_new_unbalanced(MAX_CAPACITY + 1).is_err());
        assert!(AacMaxRegister::try_new(16).is_ok());
        assert!(AacMaxRegister::try_new_unbalanced(16).is_ok());
    }

    #[test]
    #[should_panic(expected = "materializes eagerly")]
    fn oversized_capacity_panics_with_the_footprint() {
        let _ = AacMaxRegister::new(MAX_CAPACITY + 1);
    }

    #[test]
    fn out_of_bound_write_errors() {
        let reg = AacMaxRegister::new(16);
        let err = reg.try_write_max(16).unwrap_err();
        assert_eq!(err.value, 16);
        assert_eq!(err.capacity, 16);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    #[should_panic(expected = "exceeds the AAC register bound")]
    fn trait_write_panics_out_of_bounds() {
        let reg = AacMaxRegister::new(4);
        reg.write_max(ProcessId(0), 4);
    }

    #[test]
    fn unbalanced_shape_puts_small_values_near_the_root() {
        let shape = AacShape::new_unbalanced(1 << 16);
        // Value 0 at depth 1; value v at depth O(log v).
        assert_eq!(shape.value_depth(0), 1);
        for v in 1..128u64 {
            let d = shape.value_depth(v);
            let bound = 2 * (64 - v.leading_zeros()) as usize + 2;
            assert!(d <= bound, "v={v}: depth {d} > {bound}");
        }
        // The balanced shape pins everything to log2(M).
        let balanced = AacShape::new(1 << 16);
        assert_eq!(balanced.value_depth(0), 16);
        assert!(shape.value_depth(1) < balanced.value_depth(1));
    }

    #[test]
    fn unbalanced_register_round_trips_every_value() {
        for cap in [1u64, 2, 3, 9, 64, 100] {
            for v in 0..cap {
                let reg = AacMaxRegister::new_unbalanced(cap);
                reg.write_max(ProcessId(0), v);
                assert_eq!(reg.read_max(), v, "cap={cap} v={v}");
            }
        }
    }

    #[test]
    fn unbalanced_register_keeps_max_semantics() {
        let reg = AacMaxRegister::new_unbalanced(1 << 12);
        reg.write_max(ProcessId(0), 5);
        reg.write_max(ProcessId(1), 3000);
        reg.write_max(ProcessId(0), 17);
        assert_eq!(reg.read_max(), 3000);
        assert!(reg.try_write_max(1 << 12).is_err());
    }

    #[test]
    fn unbalanced_register_concurrent_writers_converge() {
        let reg = Arc::new(AacMaxRegister::new_unbalanced(1 << 14));
        let handles: Vec<_> = (0..4usize)
            .map(|i| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for k in 0..512u64 {
                        reg.write_max(ProcessId(i), k * 4 + i as u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.read_max(), 511 * 4 + 3);
    }

    #[test]
    fn concurrent_writers_converge_to_maximum() {
        let reg = Arc::new(AacMaxRegister::new(1 << 12));
        let handles: Vec<_> = (0..8usize)
            .map(|i| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for k in 0..256u64 {
                        let v = k * 8 + i as u64;
                        reg.write_max(ProcessId(i), v);
                        assert!(reg.read_max() >= v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.read_max(), 255 * 8 + 7);
    }

    #[test]
    fn reads_are_monotone_under_concurrency() {
        let reg = Arc::new(AacMaxRegister::new(1 << 12));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let r = {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = 0;
                while !stop.load(Ordering::Relaxed) {
                    let v = reg.read_max();
                    assert!(v >= last, "regressed from {last} to {v}");
                    last = v;
                }
            })
        };
        for v in 0..4000u64 {
            reg.write_max(ProcessId(0), v);
        }
        stop.store(true, Ordering::Relaxed);
        r.join().unwrap();
        assert_eq!(reg.read_max(), 3999);
    }
}
