//! Cache-line padding for contended atomic cells.
//!
//! The CAS-propagation structures in this crate (Algorithm A's tree,
//! the f-array, the counters) store many small atomic cells in one
//! contiguous arena. Without padding, eight `AtomicI64` tree nodes
//! share a 64-byte cache line, so every CAS on one node invalidates the
//! line under seven unrelated nodes in every other core's cache —
//! classic false sharing, and (as the f-array engineering literature
//! notes) the dominant constant factor of these algorithms in practice.
//!
//! [`CachePadded<T>`] aligns and pads `T` to its own 128-byte block.
//! 128 rather than 64 because adjacent-line prefetchers on recent Intel
//! parts pull cache lines in pairs, which re-couples neighbouring
//! 64-byte lines; this matches what `crossbeam_utils::CachePadded` does
//! on x86-64 (the workspace builds offline, so the wrapper is local).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so it owns its cache-line pair.
///
/// ```
/// use ruo_core::pad::CachePadded;
/// use std::sync::atomic::AtomicI64;
///
/// let cells: Vec<CachePadded<AtomicI64>> =
///     (0..4).map(|_| CachePadded::new(AtomicI64::new(0))).collect();
/// assert_eq!(std::mem::size_of::<CachePadded<AtomicI64>>(), 128);
/// cells[0].store(7, std::sync::atomic::Ordering::Relaxed);
/// ```
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own padded cache-line pair.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering};

    #[test]
    fn padded_cells_are_alignment_separated() {
        let cells: Vec<CachePadded<AtomicI64>> = (0..8)
            .map(|_| CachePadded::new(AtomicI64::new(0)))
            .collect();
        assert_eq!(std::mem::size_of::<CachePadded<AtomicI64>>(), 128);
        assert_eq!(std::mem::align_of::<CachePadded<AtomicI64>>(), 128);
        for pair in cells.windows(2) {
            let a = &*pair[0] as *const AtomicI64 as usize;
            let b = &*pair[1] as *const AtomicI64 as usize;
            assert!(b - a >= 128, "cells {a:#x}/{b:#x} share a line pair");
        }
    }

    #[test]
    fn deref_reaches_the_value() {
        let c = CachePadded::new(AtomicI64::new(3));
        c.store(9, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 9);
        assert_eq!(c.into_inner().load(Ordering::Relaxed), 9);
    }

    #[test]
    fn debug_and_from_work() {
        let c: CachePadded<u64> = 5u64.into();
        assert!(format!("{c:?}").contains("CachePadded"));
        assert_eq!(*c, 5);
    }
}
