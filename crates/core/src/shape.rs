//! Tree shapes: node arenas, complete binary trees, and Algorithm A's
//! combined tree (Figure 4 of the paper).
//!
//! A [`TreeShape`] is a static arena of nodes with parent/child links.
//! Both the real-atomics and the simulator implementations of the tree
//! algorithms (Algorithm A's max register, the f-array counter) share
//! these shapes; only the cell storage differs.

use std::fmt;

use crate::b1tree;

/// Index of a node inside a [`TreeShape`].
pub type NodeIdx = usize;

/// Sentinel in a [`PathNode`] for a missing child.
pub const NO_CHILD: u32 = u32::MAX;

/// One precomputed step of a leaf-to-root propagation path: an ancestor
/// node with both child links resolved inline, so the hot propagation
/// loops of the real-atomics implementations follow a flat slice instead
/// of chasing `Option<usize>` parent pointers (and allocating a fresh
/// `Vec` per write, as [`TreeShape::ancestors`] does).
///
/// Indices are `u32` to keep a step at 12 bytes; [`NO_CHILD`] marks an
/// absent child. Tree arenas are bounded far below `u32::MAX` nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathNode {
    /// The ancestor node to CAS.
    pub node: u32,
    /// Its left child, or [`NO_CHILD`].
    pub left: u32,
    /// Its right child, or [`NO_CHILD`].
    pub right: u32,
}

/// One node of a static tree shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeInfo {
    /// Parent node, `None` for the root.
    pub parent: Option<NodeIdx>,
    /// Left child.
    pub left: Option<NodeIdx>,
    /// Right child.
    pub right: Option<NodeIdx>,
    /// Distance from the root (root has depth 0).
    pub depth: usize,
}

impl NodeInfo {
    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.left.is_none() && self.right.is_none()
    }
}

/// A static binary-tree shape stored as an arena.
#[derive(Clone, Debug, Default)]
pub struct TreeShape {
    nodes: Vec<NodeInfo>,
}

impl TreeShape {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add_node(&mut self) -> NodeIdx {
        self.nodes.push(NodeInfo {
            parent: None,
            left: None,
            right: None,
            depth: 0,
        });
        self.nodes.len() - 1
    }

    pub(crate) fn set_children(
        &mut self,
        parent: NodeIdx,
        left: Option<NodeIdx>,
        right: Option<NodeIdx>,
    ) {
        self.nodes[parent].left = left;
        self.nodes[parent].right = right;
        if let Some(l) = left {
            self.nodes[l].parent = Some(parent);
        }
        if let Some(r) = right {
            self.nodes[r].parent = Some(parent);
        }
    }

    /// Recomputes all depths from `root`. Call once after construction.
    pub(crate) fn fix_depths(&mut self, root: NodeIdx) {
        let mut stack = vec![(root, 0usize)];
        while let Some((n, d)) = stack.pop() {
            self.nodes[n].depth = d;
            if let Some(l) = self.nodes[n].left {
                stack.push((l, d + 1));
            }
            if let Some(r) = self.nodes[n].right {
                stack.push((r, d + 1));
            }
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the shape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node accessor.
    pub fn node(&self, idx: NodeIdx) -> &NodeInfo {
        &self.nodes[idx]
    }

    /// Parent of `idx`, `None` at the root.
    pub fn parent(&self, idx: NodeIdx) -> Option<NodeIdx> {
        self.nodes[idx].parent
    }

    /// The nodes on the path from `idx` (exclusive) up to and including
    /// the root, in bottom-up order.
    pub fn ancestors(&self, idx: NodeIdx) -> Vec<NodeIdx> {
        let mut path = Vec::new();
        let mut cur = idx;
        while let Some(p) = self.nodes[cur].parent {
            path.push(p);
            cur = p;
        }
        path
    }

    /// The propagation path from `idx` (exclusive) up to and including
    /// the root, with each ancestor's child links inlined — the
    /// allocation-free-iterable form of [`ancestors`](TreeShape::ancestors),
    /// computed once at construction time by the tree implementations.
    pub fn propagation_path(&self, idx: NodeIdx) -> Box<[PathNode]> {
        assert!(self.nodes.len() < u32::MAX as usize, "arena too large");
        self.ancestors(idx)
            .into_iter()
            .map(|n| {
                let info = &self.nodes[n];
                PathNode {
                    node: n as u32,
                    left: info.left.map_or(NO_CHILD, |i| i as u32),
                    right: info.right.map_or(NO_CHILD, |i| i as u32),
                }
            })
            .collect()
    }

    /// Builds a complete binary tree with `k ≥ 1` leaves; returns the
    /// subtree root and the leaves in left-to-right order.
    pub(crate) fn build_complete(&mut self, k: usize) -> (NodeIdx, Vec<NodeIdx>) {
        assert!(k >= 1);
        if k == 1 {
            let leaf = self.add_node();
            return (leaf, vec![leaf]);
        }
        let left_count = k.div_ceil(2);
        let (l, mut leaves) = self.build_complete(left_count);
        let (r, right_leaves) = self.build_complete(k - left_count);
        leaves.extend(right_leaves);
        let n = self.add_node();
        self.set_children(n, Some(l), Some(r));
        (n, leaves)
    }
}

/// Algorithm A's combined tree for `N` processes (Figure 4): the root's
/// left subtree is a B1 tree with `N − 1` value leaves (leaf for value
/// `v` at depth `O(log v)`), its right subtree a complete binary tree
/// with `N` per-process leaves.
#[derive(Clone)]
pub struct AlgorithmATree {
    shape: TreeShape,
    root: NodeIdx,
    /// `value_leaves[v - 1]` is the leaf for value `v` (values `1..N`).
    value_leaves: Vec<NodeIdx>,
    /// `process_leaves[i]` is the leaf owned by process `i`.
    process_leaves: Vec<NodeIdx>,
    /// Precomputed leaf-to-root propagation paths, indexed by node;
    /// empty at internal nodes. `WriteMax` never recomputes its path.
    paths: Vec<Box<[PathNode]>>,
    n: usize,
}

impl fmt::Debug for AlgorithmATree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlgorithmATree")
            .field("n", &self.n)
            .field("nodes", &self.shape.len())
            .finish()
    }
}

impl AlgorithmATree {
    /// Builds the tree for `n ≥ 1` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "at least one process required");
        let mut shape = TreeShape::new();
        let root = shape.add_node();
        let (value_leaves, tl_root) = if n >= 2 {
            let (tl_root, leaves) = b1tree::build_b1(&mut shape, n - 1);
            (leaves, Some(tl_root))
        } else {
            (Vec::new(), None)
        };
        let (tr_root, process_leaves) = shape.build_complete(n);
        shape.set_children(root, tl_root, Some(tr_root));
        shape.fix_depths(root);
        let paths = (0..shape.len())
            .map(|idx| {
                if shape.node(idx).is_leaf() {
                    shape.propagation_path(idx)
                } else {
                    Box::default()
                }
            })
            .collect();
        AlgorithmATree {
            shape,
            root,
            value_leaves,
            process_leaves,
            paths,
            n,
        }
    }

    /// Number of processes sharing the register.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The underlying shape (node arena).
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// The root node (holding the register's value).
    pub fn root(&self) -> NodeIdx {
        self.root
    }

    /// The leaf a `WriteMax(v)` by process `pid` starts from: the value
    /// leaf for `v` if `1 ≤ v < N`, else the process leaf of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `v == 0` (a `WriteMax(0)` is a semantic no-op and never
    /// reaches leaf selection) or `pid ≥ N`.
    pub fn leaf_for(&self, pid: usize, v: u64) -> NodeIdx {
        assert!(v >= 1, "WriteMax(0) never selects a leaf");
        assert!(pid < self.n, "process {pid} out of range (N = {})", self.n);
        if (v as u128) < self.n as u128 {
            self.value_leaves[(v - 1) as usize]
        } else {
            self.process_leaves[pid]
        }
    }

    /// The precomputed propagation path (bottom-up ancestors with child
    /// links inlined) for `leaf`; empty unless `leaf` is one of the
    /// tree's leaves.
    #[inline]
    pub fn path_for(&self, leaf: NodeIdx) -> &[PathNode] {
        &self.paths[leaf]
    }

    /// Depth of the leaf used by `WriteMax(v)` from `pid` — proportional
    /// to the operation's step count.
    pub fn write_depth(&self, pid: usize, v: u64) -> usize {
        self.shape.node(self.leaf_for(pid, v)).depth
    }

    /// Renders the tree as ASCII art (used to regenerate Figure 4).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.label(self.root)));
        let node = self.shape.node(self.root);
        let children: Vec<NodeIdx> = [node.left, node.right].into_iter().flatten().collect();
        for (i, c) in children.iter().enumerate() {
            self.render_node(*c, "", i + 1 == children.len(), &mut out);
        }
        out
    }

    fn label(&self, idx: NodeIdx) -> String {
        if idx == self.root {
            return "root".to_string();
        }
        if let Some(v) = self.value_leaves.iter().position(|&l| l == idx) {
            return format!("TL.leaf[v={}]", v + 1);
        }
        if let Some(p) = self.process_leaves.iter().position(|&l| l == idx) {
            return format!("TR.leaf[p{p}]");
        }
        format!("n{idx}")
    }

    fn render_node(&self, idx: NodeIdx, prefix: &str, last: bool, out: &mut String) {
        let connector = if last { "└── " } else { "├── " };
        out.push_str(&format!("{prefix}{connector}{}\n", self.label(idx)));
        let child_prefix = format!("{prefix}{}", if last { "    " } else { "│   " });
        let node = self.shape.node(idx);
        let children: Vec<NodeIdx> = [node.left, node.right].into_iter().flatten().collect();
        for (i, c) in children.iter().enumerate() {
            self.render_node(*c, &child_prefix, i + 1 == children.len(), out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_tree_has_logarithmic_depth() {
        for k in 1..=64usize {
            let mut shape = TreeShape::new();
            let (root, leaves) = shape.build_complete(k);
            shape.fix_depths(root);
            assert_eq!(leaves.len(), k);
            let max_depth = leaves.iter().map(|&l| shape.node(l).depth).max().unwrap();
            let bound = (k as f64).log2().ceil() as usize;
            assert!(max_depth <= bound, "k={k}: depth {max_depth} > {bound}");
        }
    }

    #[test]
    fn complete_tree_leaves_are_leaves() {
        let mut shape = TreeShape::new();
        let (root, leaves) = shape.build_complete(10);
        shape.fix_depths(root);
        for &l in &leaves {
            assert!(shape.node(l).is_leaf());
        }
        assert!(!shape.node(root).is_leaf());
        assert_eq!(shape.parent(root), None);
    }

    #[test]
    fn ancestors_lead_to_root() {
        let mut shape = TreeShape::new();
        let (root, leaves) = shape.build_complete(8);
        shape.fix_depths(root);
        let path = shape.ancestors(leaves[3]);
        assert_eq!(*path.last().unwrap(), root);
        assert_eq!(path.len(), shape.node(leaves[3]).depth);
    }

    #[test]
    fn propagation_path_matches_ancestors() {
        let mut shape = TreeShape::new();
        let (root, leaves) = shape.build_complete(9);
        shape.fix_depths(root);
        for &leaf in &leaves {
            let path = shape.propagation_path(leaf);
            let ancestors = shape.ancestors(leaf);
            assert_eq!(path.len(), ancestors.len());
            for (step, &a) in path.iter().zip(&ancestors) {
                assert_eq!(step.node as usize, a);
                let info = shape.node(a);
                assert_eq!(step.left, info.left.map_or(NO_CHILD, |i| i as u32));
                assert_eq!(step.right, info.right.map_or(NO_CHILD, |i| i as u32));
            }
            assert_eq!(path.last().unwrap().node as usize, root);
        }
    }

    #[test]
    fn algorithm_a_tree_caches_every_leaf_path() {
        let t = AlgorithmATree::new(6);
        for &leaf in t.value_leaves.iter().chain(&t.process_leaves) {
            let path = t.path_for(leaf);
            assert!(!path.is_empty());
            assert_eq!(path.last().unwrap().node as usize, t.root());
            assert_eq!(path.len(), t.shape.node(leaf).depth);
        }
        // Internal nodes carry no path.
        assert!(t.path_for(t.root()).is_empty());
    }

    #[test]
    fn figure_4_structure_for_n_4() {
        // The paper's Figure 4: N = 4, TL is a B1 tree with 3 leaves,
        // TR a complete binary tree with 4 leaves.
        let t = AlgorithmATree::new(4);
        assert_eq!(t.value_leaves.len(), 3);
        assert_eq!(t.process_leaves.len(), 4);
        // All 4 process leaves at equal depth in the complete subtree.
        let depths: Vec<usize> = t
            .process_leaves
            .iter()
            .map(|&l| t.shape.node(l).depth)
            .collect();
        assert!(depths.iter().all(|&d| d == depths[0]));
        assert_eq!(depths[0], 3); // root -> TR root -> internal -> leaf
    }

    #[test]
    fn leaf_selection_follows_the_paper() {
        let t = AlgorithmATree::new(4);
        // v < N: value leaf, independent of pid.
        assert_eq!(t.leaf_for(0, 2), t.leaf_for(3, 2));
        // v >= N: process leaf, independent of v.
        assert_eq!(t.leaf_for(1, 4), t.leaf_for(1, 1000));
        assert_ne!(t.leaf_for(1, 4), t.leaf_for(2, 4));
    }

    #[test]
    #[should_panic(expected = "WriteMax(0)")]
    fn value_zero_never_selects_a_leaf() {
        let t = AlgorithmATree::new(4);
        let _ = t.leaf_for(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_process_is_rejected() {
        let t = AlgorithmATree::new(4);
        let _ = t.leaf_for(4, 10);
    }

    #[test]
    fn single_process_tree_has_no_value_leaves() {
        let t = AlgorithmATree::new(1);
        assert!(t.value_leaves.is_empty());
        assert_eq!(t.process_leaves.len(), 1);
        // Any value goes to the single process leaf.
        assert_eq!(t.leaf_for(0, 1), t.process_leaves[0]);
        assert_eq!(t.leaf_for(0, 1 << 40), t.process_leaves[0]);
    }

    #[test]
    fn small_value_depth_is_logarithmic_in_value() {
        // Key property of Algorithm A: writing a small value v costs
        // O(log v), even when N is huge.
        let t = AlgorithmATree::new(1 << 12);
        for v in 1..64u64 {
            let d = t.write_depth(0, v);
            let bound = 2 * (64 - (v + 1).leading_zeros()) as usize + 2;
            assert!(d <= bound, "v={v}: depth {d} > bound {bound}");
        }
    }

    #[test]
    fn large_value_depth_is_logarithmic_in_n() {
        let n = 1 << 10;
        let t = AlgorithmATree::new(n);
        let d = t.write_depth(5, u64::MAX >> 1);
        assert!(d <= 2 + (n as f64).log2().ceil() as usize);
    }

    #[test]
    fn render_mentions_both_subtrees() {
        let t = AlgorithmATree::new(4);
        let art = t.render();
        assert!(art.contains("root"));
        assert!(art.contains("TL.leaf[v=1]"));
        assert!(art.contains("TR.leaf[p3]"));
    }
}
