//! A generic **f-array** (Jayanti, PODC 2002) — the substrate behind
//! both the f-array counter and Algorithm A's propagation.
//!
//! An f-array maintains `f(a_1, …, a_N)` for an associative,
//! monotone aggregation `f` over `N` single-writer slots: reading the
//! aggregate is one step (load the root), updating a slot is `O(log N)`
//! (bump the leaf, then double-CAS the aggregation up a complete binary
//! tree). Jayanti's original uses LL/SC; as the paper notes for the
//! counter case, CAS suffices when node values are monotone — which is
//! the condition [`Aggregation`] implementations must guarantee and the
//! reason this type is *restricted*: slot updates must never decrease
//! the aggregate at any node.
//!
//! [`FArray<Sum>`] is the f-array counter generalized to arbitrary
//! per-slot contributions; [`FArray<Max>`] is an `O(1)`-read max
//! register over slot values (the complete-tree half of Algorithm A);
//! [`FArray<Min>`] tracks a minimum over decreasing slots.

use std::fmt;
use std::sync::atomic::Ordering;

use ruo_sim::stepcount::CountingI64;
use ruo_sim::{ProcessId, Word};

use crate::pad::CachePadded;
use crate::shape::{PathNode, TreeShape, NO_CHILD};

/// An associative aggregation with an identity, under which per-slot
/// updates drive every tree node **monotonically** (this is what makes
/// the double-CAS propagation ABA-free).
///
/// Implementors must guarantee: if every slot evolves monotonically in
/// the direction given by [`advances`](Aggregation::advances), then so
/// does `combine` over any subset.
pub trait Aggregation: Send + Sync + 'static {
    /// The identity element (value of an empty subtree / initial slot).
    fn identity() -> Word;

    /// Combines two subtree aggregates.
    fn combine(a: Word, b: Word) -> Word;

    /// Whether moving a slot from `old` to `new` is a legal (monotone)
    /// update.
    fn advances(old: Word, new: Word) -> bool;
}

/// Sum aggregation over non-negative, non-decreasing slots.
#[derive(Clone, Copy, Debug)]
pub struct Sum;

impl Aggregation for Sum {
    fn identity() -> Word {
        0
    }
    fn combine(a: Word, b: Word) -> Word {
        a + b
    }
    fn advances(old: Word, new: Word) -> bool {
        new >= old
    }
}

/// Maximum aggregation over non-decreasing slots.
#[derive(Clone, Copy, Debug)]
pub struct Max;

impl Aggregation for Max {
    fn identity() -> Word {
        Word::MIN
    }
    fn combine(a: Word, b: Word) -> Word {
        a.max(b)
    }
    fn advances(old: Word, new: Word) -> bool {
        new >= old
    }
}

/// Minimum aggregation over non-increasing slots.
#[derive(Clone, Copy, Debug)]
pub struct Min;

impl Aggregation for Min {
    fn identity() -> Word {
        Word::MAX
    }
    fn combine(a: Word, b: Word) -> Word {
        a.min(b)
    }
    fn advances(old: Word, new: Word) -> bool {
        new <= old
    }
}

/// Wait-free single-writer f-array: `O(1)` aggregate reads, `O(log N)`
/// slot updates, from read/write/CAS.
///
/// ```
/// use ruo_core::farray::{FArray, Max, Sum};
/// use ruo_sim::ProcessId;
///
/// // Live maximum over 4 workers' progress values:
/// let max = FArray::<Max>::new(4);
/// max.update(ProcessId(1), 17);
/// max.update(ProcessId(3), 9);
/// assert_eq!(max.read(), 17);
///
/// // And a total:
/// let total = FArray::<Sum>::new(4);
/// total.update(ProcessId(1), 17);
/// total.update(ProcessId(3), 9);
/// assert_eq!(total.read(), 26);
/// ```
pub struct FArray<A: Aggregation> {
    root: usize,
    leaves: Vec<usize>,
    /// Padded cells: one cache-line pair per node (see [`crate::pad`]).
    cells: Box<[CachePadded<CountingI64>]>,
    /// Precomputed leaf-to-root propagation paths, indexed by slot.
    paths: Vec<Box<[PathNode]>>,
    _agg: std::marker::PhantomData<A>,
}

impl<A: Aggregation> fmt::Debug for FArray<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FArray")
            .field("n", &self.leaves.len())
            .field("aggregate", &self.read())
            .finish()
    }
}

impl<A: Aggregation> FArray<A> {
    /// Creates an f-array with `n` slots, all at the identity.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "at least one slot required");
        let mut shape = TreeShape::new();
        let (root, leaves) = shape.build_complete(n);
        shape.fix_depths(root);
        let cells = (0..shape.len())
            .map(|_| CachePadded::new(CountingI64::new(A::identity())))
            .collect();
        let paths = leaves
            .iter()
            .map(|&leaf| shape.propagation_path(leaf))
            .collect();
        FArray {
            root,
            leaves,
            cells,
            paths,
            _agg: std::marker::PhantomData,
        }
    }

    /// Number of slots.
    pub fn n(&self) -> usize {
        self.leaves.len()
    }

    #[inline]
    fn child_load(&self, idx: u32) -> Word {
        // SeqCst: sibling reads pair with slot stores in the
        // store-buffering pattern of the propagation (DESIGN.md
        // § Memory orderings).
        if idx == NO_CHILD {
            A::identity()
        } else {
            self.cells[idx as usize].load(Ordering::SeqCst)
        }
    }

    /// Reads the aggregate `f(slot_0, …, slot_{N−1})` — one load.
    pub fn read(&self) -> Word {
        // Acquire: the read linearizes at this load; covering writes are
        // at-least-Release CASes and node values are monotone.
        self.cells[self.root].load(Ordering::Acquire)
    }

    /// Reads `pid`'s own slot.
    pub fn slot(&self, pid: ProcessId) -> Word {
        self.cells[self.leaves[pid.index()]].load(Ordering::Acquire)
    }

    /// Sets `pid`'s slot to `value` and propagates — `O(log N)` steps.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range or the update is not monotone
    /// (`A::advances(current, value)` is false) — non-monotone updates
    /// would reintroduce the ABA problem the CAS propagation excludes.
    pub fn update(&self, pid: ProcessId, value: Word) {
        let leaf = self.leaves[pid.index()];
        // Relaxed: the slot is single-writer, so this reads our own
        // last store; the value only feeds the monotonicity assert.
        let old = self.cells[leaf].load(Ordering::Relaxed);
        assert!(
            A::advances(old, value),
            "non-monotone slot update {old} -> {value}"
        );
        // Single-writer slot: plain store. SeqCst because the store must
        // be ordered before the sibling reads below (store-buffering —
        // DESIGN.md § Memory orderings).
        self.cells[leaf].store(value, Ordering::SeqCst);
        for step in &self.paths[pid.index()] {
            let node = step.node as usize;
            for _ in 0..2 {
                let cur = self.cells[node].load(Ordering::SeqCst);
                let new = A::combine(self.child_load(step.left), self.child_load(step.right));
                // Monotone children make `new >= cur`; equality means the
                // node already covers what we just read.
                if new == cur {
                    break;
                }
                if self.cells[node]
                    .compare_exchange(cur, new, Ordering::SeqCst, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
            }
        }
    }

    /// Monotone read-modify-write of `pid`'s slot: applies `f` to the
    /// current slot value and propagates. Returns the new slot value.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`update`](FArray::update).
    pub fn update_with(&self, pid: ProcessId, f: impl FnOnce(Word) -> Word) -> Word {
        let new = f(self.slot(pid));
        self.update(pid, new);
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sum_farray_is_a_counter() {
        let fa = FArray::<Sum>::new(3);
        assert_eq!(fa.read(), 0);
        fa.update_with(ProcessId(0), |v| v + 1);
        fa.update_with(ProcessId(2), |v| v + 5);
        fa.update_with(ProcessId(0), |v| v + 1);
        assert_eq!(fa.read(), 7);
        assert_eq!(fa.slot(ProcessId(0)), 2);
    }

    #[test]
    fn max_farray_tracks_maximum() {
        let fa = FArray::<Max>::new(4);
        assert_eq!(fa.read(), Word::MIN);
        fa.update(ProcessId(1), 10);
        fa.update(ProcessId(3), 4);
        assert_eq!(fa.read(), 10);
        fa.update(ProcessId(3), 22);
        assert_eq!(fa.read(), 22);
    }

    #[test]
    fn min_farray_tracks_minimum() {
        let fa = FArray::<Min>::new(4);
        assert_eq!(fa.read(), Word::MAX);
        fa.update(ProcessId(0), 10);
        fa.update(ProcessId(2), 4);
        assert_eq!(fa.read(), 4);
        fa.update(ProcessId(2), -3);
        assert_eq!(fa.read(), -3);
    }

    #[test]
    fn single_slot_farray_degenerates() {
        let fa = FArray::<Sum>::new(1);
        fa.update(ProcessId(0), 9);
        assert_eq!(fa.read(), 9);
    }

    #[test]
    #[should_panic(expected = "non-monotone")]
    fn non_monotone_sum_update_is_rejected() {
        let fa = FArray::<Sum>::new(2);
        fa.update(ProcessId(0), 5);
        fa.update(ProcessId(0), 3);
    }

    #[test]
    #[should_panic(expected = "non-monotone")]
    fn non_monotone_min_update_is_rejected() {
        let fa = FArray::<Min>::new(2);
        fa.update(ProcessId(0), 3);
        fa.update(ProcessId(0), 5);
    }

    #[test]
    fn concurrent_sum_is_exact() {
        let n = 8;
        let per = 1_000i64;
        let fa = Arc::new(FArray::<Sum>::new(n));
        let handles: Vec<_> = (0..n)
            .map(|t| {
                let fa = Arc::clone(&fa);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        fa.update_with(ProcessId(t), |v| v + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fa.read(), n as i64 * per);
    }

    #[test]
    fn concurrent_max_never_regresses() {
        let n = 4;
        let fa = Arc::new(FArray::<Max>::new(n));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let fa = Arc::clone(&fa);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = Word::MIN;
                while !stop.load(Ordering::Relaxed) {
                    let v = fa.read();
                    assert!(v >= last, "aggregate regressed: {last} -> {v}");
                    last = v;
                }
            })
        };
        let writers: Vec<_> = (0..n)
            .map(|t| {
                let fa = Arc::clone(&fa);
                std::thread::spawn(move || {
                    for v in 0..2_000i64 {
                        fa.update(ProcessId(t), v * n as i64 + t as i64);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(fa.read(), 1999 * n as i64 + n as i64 - 1);
    }

    #[test]
    fn aggregate_is_always_a_reachable_combination() {
        // Under concurrency the root must never exceed the sum of what
        // has been written, nor lag behind what every thread finished.
        let n = 4;
        let fa = Arc::new(FArray::<Sum>::new(n));
        std::thread::scope(|s| {
            for t in 0..n {
                let fa = Arc::clone(&fa);
                s.spawn(move || {
                    for i in 1..=500i64 {
                        fa.update(ProcessId(t), i);
                        let agg = fa.read();
                        assert!(agg >= i, "own contribution missing");
                        assert!(agg <= 500 * n as i64, "impossible aggregate {agg}");
                    }
                });
            }
        });
        assert_eq!(fa.read(), 500 * n as i64);
    }
}
