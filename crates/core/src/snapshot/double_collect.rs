//! The classic double-collect snapshot.
//!
//! Each segment is one word packing a per-segment sequence number with
//! the value. `Update` is a single-writer read-modify-write of the
//! caller's own segment (two steps). `Scan` repeatedly *collects* (reads
//! all `N` segments) until two consecutive collects are identical — a
//! clean double collect is a consistent cut, because any concurrent
//! update would have bumped a sequence number between the collects.
//!
//! `Scan` is only **obstruction-free**: a steady stream of updates can
//! starve it forever. This is the `O(1)`-update end of Corollary 1's
//! tradeoff, paid for on the scan side.

use std::fmt;
use std::sync::atomic::Ordering;

use ruo_sim::stepcount::CountingU64;
use ruo_sim::ProcessId;

use crate::traits::Snapshot;

/// Largest storable segment value: the packed word spends 32 bits on the
/// per-segment sequence number.
pub const MAX_SEGMENT_VALUE: u64 = u32::MAX as u64;

#[inline]
fn pack(seq: u32, val: u32) -> u64 {
    ((seq as u64) << 32) | val as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// Obstruction-free snapshot: `O(1)` updates, double-collect scans.
///
/// ```
/// use ruo_core::snapshot::DoubleCollectSnapshot;
/// use ruo_core::Snapshot;
/// use ruo_sim::ProcessId;
///
/// let snap = DoubleCollectSnapshot::new(3);
/// snap.update(ProcessId(1), 42);
/// assert_eq!(snap.scan(), vec![0, 42, 0]);
/// ```
pub struct DoubleCollectSnapshot {
    segments: Box<[CountingU64]>,
}

impl fmt::Debug for DoubleCollectSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DoubleCollectSnapshot")
            .field("n", &self.segments.len())
            .finish()
    }
}

impl DoubleCollectSnapshot {
    /// Creates a snapshot with `n` zeroed segments.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "at least one segment required");
        DoubleCollectSnapshot {
            segments: (0..n).map(|_| CountingU64::new(0)).collect(),
        }
    }

    fn collect(&self) -> Vec<u64> {
        self.segments
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .collect()
    }

    /// A bounded-retry scan: attempts at most `max_attempts` double
    /// collects and returns `None` if updates kept interfering.
    ///
    /// `scan` (the trait method) can spin forever under a steady update
    /// stream — that is what obstruction-freedom means. Latency-bounded
    /// callers should use this and fall back (retry later, degrade to a
    /// possibly-torn read, …) on `None`.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts == 0`.
    pub fn try_scan(&self, max_attempts: usize) -> Option<Vec<u64>> {
        assert!(max_attempts >= 1, "at least one attempt required");
        let mut prev = self.collect();
        for _ in 0..max_attempts {
            let cur = self.collect();
            if prev == cur {
                return Some(cur.into_iter().map(|w| unpack(w).1 as u64).collect());
            }
            prev = cur;
        }
        None
    }
}

impl Snapshot for DoubleCollectSnapshot {
    fn n(&self) -> usize {
        self.segments.len()
    }

    /// # Panics
    ///
    /// Panics if `v` exceeds [`MAX_SEGMENT_VALUE`] or `pid` is out of
    /// range.
    fn update(&self, pid: ProcessId, v: u64) {
        assert!(
            v <= MAX_SEGMENT_VALUE,
            "value {v} exceeds MAX_SEGMENT_VALUE"
        );
        let cell = &self.segments[pid.index()];
        // Single-writer: only `pid` writes this segment, so read + write
        // (not CAS) suffices.
        let (seq, _) = unpack(cell.load(Ordering::SeqCst));
        cell.store(pack(seq.wrapping_add(1), v as u32), Ordering::SeqCst);
    }

    fn scan(&self) -> Vec<u64> {
        let mut prev = self.collect();
        loop {
            let cur = self.collect();
            if prev == cur {
                return cur.into_iter().map(|w| unpack(w).1 as u64).collect();
            }
            prev = cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_snapshot_is_all_zero() {
        assert_eq!(DoubleCollectSnapshot::new(4).scan(), vec![0; 4]);
    }

    #[test]
    fn updates_land_in_own_segment() {
        let s = DoubleCollectSnapshot::new(3);
        s.update(ProcessId(0), 7);
        s.update(ProcessId(2), 9);
        assert_eq!(s.scan(), vec![7, 0, 9]);
    }

    #[test]
    fn repeated_updates_overwrite() {
        let s = DoubleCollectSnapshot::new(2);
        s.update(ProcessId(1), 1);
        s.update(ProcessId(1), 2);
        s.update(ProcessId(1), 3);
        assert_eq!(s.scan(), vec![0, 3]);
    }

    #[test]
    fn same_value_update_still_advances_seq() {
        // Writing the same value twice must still be detectable by a
        // concurrent scan (the seq changes) — regression guard for the
        // packing logic.
        let s = DoubleCollectSnapshot::new(1);
        s.update(ProcessId(0), 5);
        let w1 = s.segments[0].load(Ordering::SeqCst);
        s.update(ProcessId(0), 5);
        let w2 = s.segments[0].load(Ordering::SeqCst);
        assert_ne!(w1, w2);
        assert_eq!(unpack(w1).1, unpack(w2).1);
    }

    #[test]
    #[should_panic(expected = "MAX_SEGMENT_VALUE")]
    fn oversized_value_is_rejected() {
        DoubleCollectSnapshot::new(1).update(ProcessId(0), u64::MAX);
    }

    #[test]
    fn try_scan_succeeds_when_quiet() {
        let s = DoubleCollectSnapshot::new(3);
        s.update(ProcessId(1), 4);
        assert_eq!(s.try_scan(1), Some(vec![0, 4, 0]));
    }

    #[test]
    fn try_scan_gives_up_under_synthetic_interference() {
        // Interfere by writing between the collects from this same
        // thread: impossible via the public API, so emulate contention
        // by checking the bound is respected with a single attempt on a
        // snapshot being hammered from another thread.
        let s = Arc::new(DoubleCollectSnapshot::new(1));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    v += 1;
                    s.update(ProcessId(0), v % 1000);
                }
            })
        };
        // With bounded attempts the call MUST return (either verdict).
        for _ in 0..1000 {
            let _ = s.try_scan(2);
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        // Quiet again: must succeed.
        assert!(s.try_scan(1).is_some());
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn try_scan_rejects_zero_attempts() {
        let _ = DoubleCollectSnapshot::new(1).try_scan(0);
    }

    #[test]
    fn concurrent_scans_see_consistent_states() {
        let s = Arc::new(DoubleCollectSnapshot::new(2));
        // Writer keeps both segments equal; scanners must never see them
        // differ by more than one step.
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for v in 1..=2000u64 {
                    s.update(ProcessId(0), v);
                    s.update(ProcessId(1), v);
                }
            })
        };
        let scanner = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let view = s.scan();
                    let diff = view[0].abs_diff(view[1]);
                    assert!(diff <= 1, "torn scan: {view:?}");
                }
            })
        };
        writer.join().unwrap();
        scanner.join().unwrap();
    }
}
