//! Simulator step machines for snapshots.
//!
//! Only the double-collect snapshot is simulated: it is the snapshot
//! whose step behaviour the Theorem 1 / Corollary 1 experiments need
//! (an `O(1)`-update snapshot whose scans an adversary can stretch), and
//! it fits the model's single-word base objects. The Afek and
//! path-copying snapshots rely on wide registers / pointers and exist as
//! real-atomics implementations only (see `DESIGN.md`).

use std::sync::{Arc, Mutex};

use ruo_sim::{done, read, write, Machine, Memory, ObjId, ProcessId, Step, Word};

/// A snapshot whose operations are simulator step machines.
///
/// Scan machines return a *token*; exchange it for the scanned vector
/// with [`take_scan_result`](SimSnapshot::take_scan_result) (the
/// executor's `OpSpec::vector` does this automatically).
pub trait SimSnapshot: Send + Sync {
    /// Number of segments.
    fn n(&self) -> usize;

    /// An `Update(v)` of `pid`'s segment as a step machine.
    fn update(&self, pid: ProcessId, v: u64) -> Machine;

    /// A `Scan` as a step machine; the machine's result is a token.
    fn scan(&self, pid: ProcessId) -> Machine;

    /// Exchanges a scan machine's token for the scanned vector.
    fn take_scan_result(&self, token: Word) -> Vec<u64>;
}

#[inline]
fn pack(seq: u32, val: u32) -> Word {
    (((seq as u64) << 32) | val as u64) as Word
}

#[inline]
fn unpack_val(word: Word) -> u64 {
    (word as u64) & 0xFFFF_FFFF
}

/// The double-collect snapshot as step machines: updates are exactly 2
/// steps; scans take `2N` steps per attempt and retry until a clean
/// double collect.
#[derive(Debug)]
pub struct SimDoubleCollectSnapshot {
    segments: Arc<Vec<ObjId>>,
    results: Arc<Mutex<Vec<Vec<u64>>>>,
}

impl SimDoubleCollectSnapshot {
    /// Allocates `n` zeroed segments in `mem`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(mem: &mut Memory, n: usize) -> Self {
        assert!(n >= 1, "at least one segment required");
        SimDoubleCollectSnapshot {
            segments: Arc::new(mem.alloc_n(n, 0)),
            results: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

/// Reads segments `i..n` into `acc`, then continues with `k`.
fn collect(
    segments: Arc<Vec<ObjId>>,
    i: usize,
    mut acc: Vec<Word>,
    k: Box<dyn FnOnce(Vec<Word>) -> Step + Send>,
) -> Step {
    if i == segments.len() {
        return k(acc);
    }
    let seg = segments[i];
    read(seg, move |w| {
        acc.push(w);
        collect(segments, i + 1, acc, k)
    })
}

fn scan_attempt(
    segments: Arc<Vec<ObjId>>,
    prev: Option<Vec<Word>>,
    results: Arc<Mutex<Vec<Vec<u64>>>>,
) -> Step {
    let segs = Arc::clone(&segments);
    collect(
        segments,
        0,
        Vec::new(),
        Box::new(move |cur| {
            if prev.as_deref() == Some(cur.as_slice()) {
                let vals: Vec<u64> = cur.iter().map(|&w| unpack_val(w)).collect();
                let mut table = results.lock().unwrap();
                table.push(vals);
                done(table.len() as Word - 1)
            } else {
                scan_attempt(segs, Some(cur), results)
            }
        }),
    )
}

impl SimSnapshot for SimDoubleCollectSnapshot {
    fn n(&self) -> usize {
        self.segments.len()
    }

    /// # Panics
    ///
    /// Panics if `v` exceeds [`super::MAX_SEGMENT_VALUE`].
    fn update(&self, pid: ProcessId, v: u64) -> Machine {
        assert!(
            v <= super::MAX_SEGMENT_VALUE,
            "value {v} exceeds MAX_SEGMENT_VALUE"
        );
        let seg = self.segments[pid.index()];
        Machine::new(read(seg, move |w| {
            let seq = ((w as u64) >> 32) as u32;
            write(seg, pack(seq.wrapping_add(1), v as u32), || done(0))
        }))
    }

    fn scan(&self, _pid: ProcessId) -> Machine {
        Machine::new(scan_attempt(
            Arc::clone(&self.segments),
            None,
            Arc::clone(&self.results),
        ))
    }

    fn take_scan_result(&self, token: Word) -> Vec<u64> {
        self.results.lock().unwrap()[token as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruo_sim::run_solo;

    #[test]
    fn update_is_exactly_two_steps() {
        let mut mem = Memory::new();
        let s = SimDoubleCollectSnapshot::new(&mut mem, 4);
        let (_, steps) = run_solo(&mut mem, ProcessId(0), s.update(ProcessId(0), 9));
        assert_eq!(steps, 2);
    }

    #[test]
    fn solo_scan_takes_two_collects() {
        let mut mem = Memory::new();
        let n = 4;
        let s = SimDoubleCollectSnapshot::new(&mut mem, n);
        let (token, steps) = run_solo(&mut mem, ProcessId(0), s.scan(ProcessId(0)));
        assert_eq!(steps, 2 * n);
        assert_eq!(s.take_scan_result(token), vec![0; n]);
    }

    #[test]
    fn scan_sees_updates() {
        let mut mem = Memory::new();
        let s = SimDoubleCollectSnapshot::new(&mut mem, 3);
        run_solo(&mut mem, ProcessId(1), s.update(ProcessId(1), 5));
        run_solo(&mut mem, ProcessId(2), s.update(ProcessId(2), 7));
        let (token, _) = run_solo(&mut mem, ProcessId(0), s.scan(ProcessId(0)));
        assert_eq!(s.take_scan_result(token), vec![0, 5, 7]);
    }

    #[test]
    fn interfered_scan_retries() {
        // Interleave an update between the scan's two collects; the scan
        // must take extra rounds.
        let mut mem = Memory::new();
        let s = SimDoubleCollectSnapshot::new(&mut mem, 2);
        let mut scan = s.scan(ProcessId(0));
        // First collect (2 reads).
        for _ in 0..2 {
            let p = scan.enabled().unwrap();
            let r = mem.apply(ProcessId(0), p);
            scan.feed(r);
        }
        // Now p1 updates segment 1, invalidating the first collect.
        run_solo(&mut mem, ProcessId(1), s.update(ProcessId(1), 3));
        // Let the scan finish.
        while let Some(p) = scan.enabled() {
            let r = mem.apply(ProcessId(0), p);
            scan.feed(r);
        }
        assert!(scan.steps() > 4, "scan should have retried");
        let token = scan.result().unwrap();
        assert_eq!(s.take_scan_result(token), vec![0, 3]);
    }

    #[test]
    fn same_value_update_perturbs_scans() {
        // Sequence numbers make same-value rewrites visible.
        let mut mem = Memory::new();
        let s = SimDoubleCollectSnapshot::new(&mut mem, 1);
        run_solo(&mut mem, ProcessId(0), s.update(ProcessId(0), 5));
        let before = mem.peek(s.segments[0]);
        run_solo(&mut mem, ProcessId(0), s.update(ProcessId(0), 5));
        let after = mem.peek(s.segments[0]);
        assert_ne!(before, after);
        assert_eq!(unpack_val(before), unpack_val(after));
    }
}
