//! A restricted-use path-copying snapshot: `O(1)` consistent-view
//! acquisition, `O(log N)` uncontended updates.
//!
//! The segments are the leaves of an immutable complete binary tree; the
//! root pointer is the only mutable cell. `Update` path-copies from the
//! caller's leaf to a fresh root (sharing all untouched subtrees) and
//! CASes the root pointer; `Scan` loads the root — one step — and walks
//! the *immutable* tree at leisure. This is the pointer-based analogue
//! of Jayanti's f-array, sitting at the `O(1)`-read end of Corollary 1's
//! tradeoff.
//!
//! **Restricted use**: nodes are never freed while the snapshot lives
//! (old versions may still be referenced by in-flight scans), so memory
//! grows by `O(log N)` nodes per update. The paper's setting — at most
//! polynomially many updates — is exactly the regime where this is
//! acceptable; construction takes an explicit `max_updates` bound and
//! refuses to exceed it.

use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use ruo_sim::stepcount;
use ruo_sim::ProcessId;

use crate::traits::Snapshot;

struct Node {
    /// Null for leaves.
    left: *const Node,
    /// Null for leaves.
    right: *const Node,
    /// Number of leaves in the left subtree (navigation).
    left_leaves: usize,
    /// Leaf payload (unused on internal nodes).
    value: u64,
    /// Intrusive allocation-registry link (see `alloc_head`).
    next_alloc: AtomicPtr<Node>,
}

/// Lock-free restricted-use snapshot with `O(1)` view acquisition.
///
/// ```
/// use ruo_core::snapshot::PathCopySnapshot;
/// use ruo_core::Snapshot;
/// use ruo_sim::ProcessId;
///
/// let snap = PathCopySnapshot::new(4, 1_000);
/// snap.update(ProcessId(1), 5);
/// let view = snap.view();
/// assert_eq!(view.get(1), 5);
/// assert_eq!(snap.scan(), vec![0, 5, 0, 0]);
/// ```
pub struct PathCopySnapshot {
    root: AtomicPtr<Node>,
    /// Head of the intrusive list of every node ever allocated; freed in
    /// `Drop`.
    alloc_head: AtomicPtr<Node>,
    updates: AtomicU64,
    max_updates: u64,
    n: usize,
}

// SAFETY: all reachable `Node`s are immutable after publication and are
// only freed in `Drop` (which takes `&mut self`); the mutable state is
// confined to atomics.
unsafe impl Send for PathCopySnapshot {}
// SAFETY: same reasoning — shared access only ever reads immutable nodes
// or uses atomic operations.
unsafe impl Sync for PathCopySnapshot {}

impl fmt::Debug for PathCopySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PathCopySnapshot")
            .field("n", &self.n)
            .field("updates", &self.updates.load(Ordering::Relaxed))
            .field("max_updates", &self.max_updates)
            .finish()
    }
}

impl PathCopySnapshot {
    /// Creates a snapshot with `n` zeroed segments supporting at most
    /// `max_updates` updates in total.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `max_updates == 0`.
    pub fn new(n: usize, max_updates: u64) -> Self {
        assert!(n >= 1, "at least one segment required");
        assert!(max_updates >= 1, "update bound must be positive");
        let snap = PathCopySnapshot {
            root: AtomicPtr::new(ptr::null_mut()),
            alloc_head: AtomicPtr::new(ptr::null_mut()),
            updates: AtomicU64::new(0),
            max_updates,
            n,
        };
        let root = snap.build_zeroed(n);
        snap.root.store(root as *mut Node, Ordering::SeqCst);
        snap
    }

    /// Allocates a node and links it into the allocation registry so
    /// `Drop` can free it.
    fn alloc(
        &self,
        left: *const Node,
        right: *const Node,
        left_leaves: usize,
        value: u64,
    ) -> *const Node {
        let node = Box::into_raw(Box::new(Node {
            left,
            right,
            left_leaves,
            value,
            next_alloc: AtomicPtr::new(ptr::null_mut()),
        }));
        let mut head = self.alloc_head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is unpublished — we hold the only pointer.
            unsafe { (*node).next_alloc.store(head, Ordering::Relaxed) };
            match self.alloc_head.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return node,
                Err(actual) => head = actual,
            }
        }
    }

    fn build_zeroed(&self, k: usize) -> *const Node {
        if k == 1 {
            return self.alloc(ptr::null(), ptr::null(), 0, 0);
        }
        let left_count = k.div_ceil(2);
        let left = self.build_zeroed(left_count);
        let right = self.build_zeroed(k - left_count);
        self.alloc(left, right, left_count, 0)
    }

    /// Path-copies `root`, setting leaf `idx` (within a subtree of
    /// `count` leaves) to `v`.
    ///
    /// # Safety
    ///
    /// `node` must point to a live node of this snapshot.
    unsafe fn copy_path(&self, node: *const Node, count: usize, idx: usize, v: u64) -> *const Node {
        let cur = &*node;
        if count == 1 {
            return self.alloc(ptr::null(), ptr::null(), 0, v);
        }
        if idx < cur.left_leaves {
            let new_left = self.copy_path(cur.left, cur.left_leaves, idx, v);
            self.alloc(new_left, cur.right, cur.left_leaves, 0)
        } else {
            let new_right =
                self.copy_path(cur.right, count - cur.left_leaves, idx - cur.left_leaves, v);
            self.alloc(cur.left, new_right, cur.left_leaves, 0)
        }
    }

    /// Pins the current version: a consistent, immutable view of all
    /// segments, obtained with a single atomic load.
    pub fn view(&self) -> SnapshotView<'_> {
        // Pointer cells fall outside `CountingU64`; count the primitive
        // by hand so scans still cost their one shared-memory step.
        stepcount::count_read();
        SnapshotView {
            root: self.root.load(Ordering::SeqCst),
            n: self.n,
            _snap: std::marker::PhantomData,
        }
    }

    /// Number of updates performed so far.
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// The restricted-use bound.
    pub fn max_updates(&self) -> u64 {
        self.max_updates
    }
}

impl Snapshot for PathCopySnapshot {
    fn n(&self) -> usize {
        self.n
    }

    /// # Panics
    ///
    /// Panics if the restricted-use update bound is exceeded.
    fn update(&self, pid: ProcessId, v: u64) {
        assert!(pid.index() < self.n, "process out of range");
        // Shared RMW on the update ticket — one step (counted as a
        // successful CAS, the convention for fetch_add).
        stepcount::count_cas(true);
        let used = self.updates.fetch_add(1, Ordering::Relaxed);
        assert!(
            used < self.max_updates,
            "restricted-use bound of {} updates exceeded",
            self.max_updates
        );
        loop {
            stepcount::count_read();
            let cur = self.root.load(Ordering::SeqCst);
            // SAFETY: `cur` came from the root pointer and nodes live
            // until `Drop`.
            let new = unsafe { self.copy_path(cur, self.n, pid.index(), v) };
            let swapped = self
                .root
                .compare_exchange(cur, new as *mut Node, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
            stepcount::count_cas(swapped);
            if swapped {
                return;
            }
            // Lost the race; the abandoned path stays in the registry and
            // is reclaimed at drop. Retry against the new root.
        }
    }

    fn scan(&self) -> Vec<u64> {
        self.view().to_vec()
    }
}

impl Drop for PathCopySnapshot {
    fn drop(&mut self) {
        let mut cur = self.alloc_head.load(Ordering::Relaxed);
        while !cur.is_null() {
            // SAFETY: every node was allocated by `alloc` via
            // `Box::into_raw` and appears exactly once in this list; we
            // have `&mut self`, so no readers remain.
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed.next_alloc.load(Ordering::Relaxed);
        }
    }
}

/// A consistent, immutable view of a [`PathCopySnapshot`] version.
///
/// Obtained in `O(1)`; individual segments are read in `O(log N)` and
/// the whole vector in `O(N)`. The view stays valid (and frozen) for the
/// lifetime of the snapshot borrow, no matter how many updates happen
/// concurrently.
pub struct SnapshotView<'a> {
    root: *const Node,
    n: usize,
    _snap: std::marker::PhantomData<&'a PathCopySnapshot>,
}

// SAFETY: a view only reads immutable nodes kept alive by the snapshot
// borrow.
unsafe impl Send for SnapshotView<'_> {}
// SAFETY: same — all access is read-only.
unsafe impl Sync for SnapshotView<'_> {}

impl fmt::Debug for SnapshotView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotView")
            .field("segments", &self.to_vec())
            .finish()
    }
}

impl SnapshotView<'_> {
    /// Number of segments.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the view has no segments (never true: `n ≥ 1`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Reads segment `idx` from this frozen version (`O(log N)`).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn get(&self, idx: usize) -> u64 {
        assert!(idx < self.n, "segment {idx} out of range");
        let mut node = self.root;
        let mut count = self.n;
        let mut idx = idx;
        loop {
            // SAFETY: nodes live until the snapshot drops, and the view
            // borrows the snapshot.
            let cur = unsafe { &*node };
            if count == 1 {
                return cur.value;
            }
            if idx < cur.left_leaves {
                node = cur.left;
                count = cur.left_leaves;
            } else {
                idx -= cur.left_leaves;
                count -= cur.left_leaves;
                node = cur.right;
            }
        }
    }

    /// Copies every segment out of this frozen version (`O(N)`).
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.n);
        // SAFETY: as in `get`.
        unsafe { collect_leaves(self.root, &mut out) };
        out
    }
}

/// # Safety
///
/// `node` must point to a live node tree.
unsafe fn collect_leaves(node: *const Node, out: &mut Vec<u64>) {
    let cur = &*node;
    if cur.left.is_null() {
        out.push(cur.value);
    } else {
        collect_leaves(cur.left, out);
        collect_leaves(cur.right, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_snapshot_is_all_zero() {
        let s = PathCopySnapshot::new(5, 10);
        assert_eq!(s.scan(), vec![0; 5]);
    }

    #[test]
    fn updates_land_in_own_segment() {
        let s = PathCopySnapshot::new(4, 100);
        s.update(ProcessId(2), 7);
        s.update(ProcessId(0), 3);
        assert_eq!(s.scan(), vec![3, 0, 7, 0]);
        let v = s.view();
        assert_eq!(v.get(0), 3);
        assert_eq!(v.get(2), 7);
        assert_eq!(v.get(3), 0);
    }

    #[test]
    fn views_are_frozen_versions() {
        let s = PathCopySnapshot::new(2, 100);
        s.update(ProcessId(0), 1);
        let old = s.view();
        s.update(ProcessId(0), 2);
        s.update(ProcessId(1), 9);
        // The old view is unaffected by later updates.
        assert_eq!(old.to_vec(), vec![1, 0]);
        assert_eq!(s.scan(), vec![2, 9]);
    }

    #[test]
    fn update_bound_is_enforced() {
        let s = PathCopySnapshot::new(2, 2);
        s.update(ProcessId(0), 1);
        s.update(ProcessId(1), 1);
        let r = std::panic::catch_unwind(|| s.update(ProcessId(0), 2));
        assert!(r.is_err());
    }

    #[test]
    fn single_segment_works() {
        let s = PathCopySnapshot::new(1, 8);
        s.update(ProcessId(0), 4);
        assert_eq!(s.scan(), vec![4]);
        assert_eq!(s.view().get(0), 4);
    }

    #[test]
    fn concurrent_updates_all_land() {
        let n = 8;
        let per = 50u64;
        let s = Arc::new(PathCopySnapshot::new(n, n as u64 * per));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for v in 1..=per {
                        s.update(ProcessId(i), v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.scan(), vec![per; n]);
    }

    #[test]
    fn concurrent_scans_are_coordinatewise_monotone() {
        let s = Arc::new(PathCopySnapshot::new(3, 4000));
        let writer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for v in 1..=1000u64 {
                    s.update(ProcessId(0), v);
                }
            })
        };
        let mut last = 0;
        for _ in 0..500 {
            let cur = s.scan();
            assert!(cur[0] >= last, "segment regressed");
            last = cur[0];
        }
        writer.join().unwrap();
    }

    #[test]
    fn drop_frees_everything_without_crashing() {
        let s = PathCopySnapshot::new(4, 1000);
        for v in 0..200 {
            s.update(ProcessId((v % 4) as usize), v as u64);
        }
        drop(s);
    }
}
