//! The Afek–Attiya–Dolev–Gafni–Merritt–Shavit wait-free snapshot
//! (JACM 1993), with helping.
//!
//! Each segment holds `(value, sequence number, embedded view)`. `Update`
//! first performs a full `Scan` and stores the result *inside* the
//! segment together with the new value. `Scan` double-collects; if a
//! clean double collect fails because some segment changed, the scanner
//! tracks movers — once the *same* segment has moved twice during one
//! scan, its latest embedded view is a scan that started after ours did,
//! so the scanner can safely **borrow** it. At most `N` single moves can
//! occur before some segment moves twice, so scans (and therefore
//! updates) finish in `O(N²)` steps: wait-free from reads and writes of
//! (wide) registers.
//!
//! Segments here are pointers to immutable records. Superseded records
//! are pushed onto a lock-free retire list and reclaimed when the
//! snapshot is dropped, so readers never see freed memory without any
//! external epoch/hazard machinery (the workspace builds offline with
//! zero dependencies). Memory therefore grows with the number of
//! updates over the snapshot's lifetime — see the "Deviations" note in
//! `DESIGN.md`.

use std::fmt;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use ruo_sim::ProcessId;

use crate::pad::CachePadded;
use crate::traits::Snapshot;

struct Cell {
    seq: u64,
    val: u64,
    /// The embedded view: the updater's scan at the time of the update.
    /// `None` only for the initial (seq 0) cells.
    view: Option<Box<[u64]>>,
    /// Intrusive link for the retire list; written only while the record
    /// is being retired (after it has been unlinked from its segment).
    retired_next: AtomicPtr<Cell>,
}

/// Wait-free snapshot with embedded-scan helping: `O(N²)` scans and
/// updates from reads and writes of wide registers.
///
/// ```
/// use ruo_core::snapshot::AfekSnapshot;
/// use ruo_core::Snapshot;
/// use ruo_sim::ProcessId;
///
/// let snap = AfekSnapshot::new(3);
/// snap.update(ProcessId(0), 11);
/// snap.update(ProcessId(2), 22);
/// assert_eq!(snap.scan(), vec![11, 0, 22]);
/// ```
pub struct AfekSnapshot {
    cells: Box<[CachePadded<AtomicPtr<Cell>>]>,
    /// Treiber-stack head of superseded records, reclaimed on drop.
    retired: AtomicPtr<Cell>,
}

impl fmt::Debug for AfekSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AfekSnapshot")
            .field("n", &self.cells.len())
            .finish()
    }
}

impl AfekSnapshot {
    /// Creates a snapshot with `n` zeroed segments.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "at least one segment required");
        let cells = (0..n)
            .map(|_| {
                CachePadded::new(AtomicPtr::new(Box::into_raw(Box::new(Cell {
                    seq: 0,
                    val: 0,
                    view: None,
                    retired_next: AtomicPtr::new(ptr::null_mut()),
                }))))
            })
            .collect();
        AfekSnapshot {
            cells,
            retired: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Reads every cell once, returning record refs that stay valid for
    /// the borrow of `self`: records are never freed before `drop`.
    fn collect(&self) -> Vec<&Cell> {
        self.cells
            .iter()
            .map(|c| {
                let p = c.load(Ordering::Acquire);
                // SAFETY: segments always hold a record installed by
                // `new` or `update`; superseded records go to the retire
                // list and are only freed in `drop`, which requires
                // `&mut self` — so `p` outlives this shared borrow.
                unsafe { &*p }
            })
            .collect()
    }

    /// Pushes a superseded record onto the retire list (lock-free).
    fn retire(&self, record: *mut Cell) {
        let mut head = self.retired.load(Ordering::Relaxed);
        loop {
            // SAFETY: `record` was just unlinked by the CAS/swap in
            // `update`; only the retiring thread writes `retired_next`.
            unsafe { (*record).retired_next.store(head, Ordering::Relaxed) };
            match self.retired.compare_exchange_weak(
                head,
                record,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => head = actual,
            }
        }
    }

    fn scan_inner(&self) -> Vec<u64> {
        let n = self.cells.len();
        let mut moved = vec![0u8; n];
        let mut prev = self.collect();
        loop {
            let cur = self.collect();
            if prev.iter().zip(cur.iter()).all(|(a, b)| a.seq == b.seq) {
                return cur.iter().map(|c| c.val).collect();
            }
            for i in 0..n {
                if prev[i].seq != cur[i].seq {
                    moved[i] += 1;
                    if moved[i] >= 2 {
                        // Second move: cur[i]'s embedded view comes from
                        // a scan that started after ours — borrow it.
                        let view = cur[i]
                            .view
                            .as_ref()
                            .expect("a twice-moved segment was written with a view");
                        return view.to_vec();
                    }
                }
            }
            prev = cur;
        }
    }
}

impl Snapshot for AfekSnapshot {
    fn n(&self) -> usize {
        self.cells.len()
    }

    fn update(&self, pid: ProcessId, v: u64) {
        let view = self.scan_inner();
        let cell = &self.cells[pid.index()];
        // SAFETY: see `collect` — records live until `drop`.
        let old_seq = unsafe { &*cell.load(Ordering::Acquire) }.seq;
        let new = Box::into_raw(Box::new(Cell {
            seq: old_seq + 1,
            val: v,
            view: Some(view.into_boxed_slice()),
            retired_next: AtomicPtr::new(ptr::null_mut()),
        }));
        // Release publishes the record's contents to readers that
        // Acquire-load this segment pointer; AcqRel also orders the
        // unlinked record's retirement after any prior publication.
        let old = cell.swap(new, Ordering::AcqRel);
        self.retire(old);
    }

    fn scan(&self) -> Vec<u64> {
        self.scan_inner()
    }
}

impl Drop for AfekSnapshot {
    fn drop(&mut self) {
        // `&mut self`: no concurrent readers; free current + retired.
        for cell in self.cells.iter() {
            let p = cell.load(Ordering::Relaxed);
            if !p.is_null() {
                // SAFETY: exclusive access; `p` came from Box::into_raw.
                drop(unsafe { Box::from_raw(p) });
            }
        }
        let mut p = self.retired.load(Ordering::Relaxed);
        while !p.is_null() {
            // SAFETY: exclusive access; each retired record came from
            // Box::into_raw and appears on the list exactly once.
            let next = unsafe { &*p }.retired_next.load(Ordering::Relaxed);
            drop(unsafe { Box::from_raw(p) });
            p = next;
        }
    }
}

// SAFETY: the raw pointers are only ever to heap records transferred
// between threads through atomics with Release/Acquire ordering, and
// reclamation is confined to `drop(&mut self)`.
unsafe impl Send for AfekSnapshot {}
unsafe impl Sync for AfekSnapshot {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_snapshot_is_all_zero() {
        assert_eq!(AfekSnapshot::new(3).scan(), vec![0; 3]);
    }

    #[test]
    fn sequential_updates_are_visible() {
        let s = AfekSnapshot::new(3);
        s.update(ProcessId(0), 5);
        assert_eq!(s.scan(), vec![5, 0, 0]);
        s.update(ProcessId(2), 7);
        assert_eq!(s.scan(), vec![5, 0, 7]);
        s.update(ProcessId(0), 1);
        assert_eq!(s.scan(), vec![1, 0, 7]);
    }

    #[test]
    fn single_segment_snapshot() {
        let s = AfekSnapshot::new(1);
        s.update(ProcessId(0), 9);
        assert_eq!(s.scan(), vec![9]);
    }

    #[test]
    fn concurrent_updates_and_scans_stay_consistent() {
        let n = 4;
        let s = Arc::new(AfekSnapshot::new(n));
        // Each writer publishes strictly increasing values; scans must be
        // coordinatewise monotone over time.
        let writers: Vec<_> = (0..n)
            .map(|i| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for v in 1..=300u64 {
                        s.update(ProcessId(i), v);
                    }
                })
            })
            .collect();
        let scanners: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut last = vec![0u64; n];
                    for _ in 0..200 {
                        let cur = s.scan();
                        for i in 0..n {
                            assert!(
                                cur[i] >= last[i],
                                "segment {i} regressed: {last:?} -> {cur:?}"
                            );
                        }
                        last = cur;
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for sc in scanners {
            sc.join().unwrap();
        }
        assert_eq!(s.scan(), vec![300; n]);
    }

    #[test]
    fn no_memory_unsafety_on_drop_with_history() {
        let s = AfekSnapshot::new(2);
        for v in 0..50 {
            s.update(ProcessId(0), v);
            s.update(ProcessId(1), v);
        }
        drop(s); // Miri/asan would flag leaks or UAF here
    }
}
