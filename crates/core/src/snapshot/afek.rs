//! The Afek–Attiya–Dolev–Gafni–Merritt–Shavit wait-free snapshot
//! (JACM 1993), with helping.
//!
//! Each segment holds `(value, sequence number, embedded view)`. `Update`
//! first performs a full `Scan` and stores the result *inside* the
//! segment together with the new value. `Scan` double-collects; if a
//! clean double collect fails because some segment changed, the scanner
//! tracks movers — once the *same* segment has moved twice during one
//! scan, its latest embedded view is a scan that started after ours did,
//! so the scanner can safely **borrow** it. At most `N` single moves can
//! occur before some segment moves twice, so scans (and therefore
//! updates) finish in `O(N²)` steps: wait-free from reads and writes of
//! (wide) registers.
//!
//! Segments here are pointers to immutable records, managed with
//! `crossbeam-epoch` so readers never see freed memory.

use std::fmt;
use std::sync::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned};
use ruo_sim::ProcessId;

use crate::traits::Snapshot;

struct Cell {
    seq: u64,
    val: u64,
    /// The embedded view: the updater's scan at the time of the update.
    /// `None` only for the initial (seq 0) cells.
    view: Option<Box<[u64]>>,
}

/// Wait-free snapshot with embedded-scan helping: `O(N²)` scans and
/// updates from reads and writes of wide registers.
///
/// ```
/// use ruo_core::snapshot::AfekSnapshot;
/// use ruo_core::Snapshot;
/// use ruo_sim::ProcessId;
///
/// let snap = AfekSnapshot::new(3);
/// snap.update(ProcessId(0), 11);
/// snap.update(ProcessId(2), 22);
/// assert_eq!(snap.scan(), vec![11, 0, 22]);
/// ```
pub struct AfekSnapshot {
    cells: Box<[Atomic<Cell>]>,
}

impl fmt::Debug for AfekSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AfekSnapshot")
            .field("n", &self.cells.len())
            .finish()
    }
}

impl AfekSnapshot {
    /// Creates a snapshot with `n` zeroed segments.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "at least one segment required");
        let cells = (0..n)
            .map(|_| {
                Atomic::new(Cell {
                    seq: 0,
                    val: 0,
                    view: None,
                })
            })
            .collect();
        AfekSnapshot { cells }
    }

    /// Reads every cell once, returning `(seq, val, view-or-None)` refs
    /// valid for the guard's lifetime.
    fn collect<'g>(&self, guard: &'g Guard) -> Vec<&'g Cell> {
        self.cells
            .iter()
            .map(|c| {
                let shared = c.load(Ordering::SeqCst, guard);
                // SAFETY: cells are only replaced via `swap` in `update`,
                // and the old record is handed to `defer_destroy` under
                // this epoch scheme, so a record loaded under `guard`
                // stays alive for the guard's lifetime.
                unsafe { shared.deref() }
            })
            .collect()
    }

    fn scan_inner(&self, guard: &Guard) -> Vec<u64> {
        let n = self.cells.len();
        let mut moved = vec![0u8; n];
        let mut prev = self.collect(guard);
        loop {
            let cur = self.collect(guard);
            if prev.iter().zip(cur.iter()).all(|(a, b)| a.seq == b.seq) {
                return cur.iter().map(|c| c.val).collect();
            }
            for i in 0..n {
                if prev[i].seq != cur[i].seq {
                    moved[i] += 1;
                    if moved[i] >= 2 {
                        // Second move: cur[i]'s embedded view comes from
                        // a scan that started after ours — borrow it.
                        let view = cur[i]
                            .view
                            .as_ref()
                            .expect("a twice-moved segment was written with a view");
                        return view.to_vec();
                    }
                }
            }
            prev = cur;
        }
    }
}

impl Snapshot for AfekSnapshot {
    fn n(&self) -> usize {
        self.cells.len()
    }

    fn update(&self, pid: ProcessId, v: u64) {
        let guard = epoch::pin();
        let view = self.scan_inner(&guard);
        let cell = &self.cells[pid.index()];
        let old_seq = {
            let shared = cell.load(Ordering::SeqCst, &guard);
            // SAFETY: see `collect` — records stay alive under the guard.
            unsafe { shared.deref() }.seq
        };
        let new = Owned::new(Cell {
            seq: old_seq + 1,
            val: v,
            view: Some(view.into_boxed_slice()),
        });
        let old = cell.swap(new, Ordering::SeqCst, &guard);
        // SAFETY: `old` was just unlinked by the swap; no new reader can
        // obtain it, and current readers hold epoch guards, which is
        // exactly what defer_destroy waits for.
        unsafe { guard.defer_destroy(old) };
    }

    fn scan(&self) -> Vec<u64> {
        let guard = epoch::pin();
        self.scan_inner(&guard)
    }
}

impl Drop for AfekSnapshot {
    fn drop(&mut self) {
        let guard = unsafe { epoch::unprotected() };
        for cell in self.cells.iter() {
            let shared = cell.load(Ordering::Relaxed, guard);
            if !shared.is_null() {
                // SAFETY: we have `&mut self`, so no other thread can
                // access the cells; taking ownership is safe.
                drop(unsafe { shared.into_owned() });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_snapshot_is_all_zero() {
        assert_eq!(AfekSnapshot::new(3).scan(), vec![0; 3]);
    }

    #[test]
    fn sequential_updates_are_visible() {
        let s = AfekSnapshot::new(3);
        s.update(ProcessId(0), 5);
        assert_eq!(s.scan(), vec![5, 0, 0]);
        s.update(ProcessId(2), 7);
        assert_eq!(s.scan(), vec![5, 0, 7]);
        s.update(ProcessId(0), 1);
        assert_eq!(s.scan(), vec![1, 0, 7]);
    }

    #[test]
    fn single_segment_snapshot() {
        let s = AfekSnapshot::new(1);
        s.update(ProcessId(0), 9);
        assert_eq!(s.scan(), vec![9]);
    }

    #[test]
    fn concurrent_updates_and_scans_stay_consistent() {
        let n = 4;
        let s = Arc::new(AfekSnapshot::new(n));
        // Each writer publishes strictly increasing values; scans must be
        // coordinatewise monotone over time.
        let writers: Vec<_> = (0..n)
            .map(|i| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for v in 1..=300u64 {
                        s.update(ProcessId(i), v);
                    }
                })
            })
            .collect();
        let scanners: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut last = vec![0u64; n];
                    for _ in 0..200 {
                        let cur = s.scan();
                        for i in 0..n {
                            assert!(
                                cur[i] >= last[i],
                                "segment {i} regressed: {last:?} -> {cur:?}"
                            );
                        }
                        last = cur;
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for sc in scanners {
            sc.join().unwrap();
        }
        assert_eq!(s.scan(), vec![300; n]);
    }

    #[test]
    fn no_memory_unsafety_on_drop_with_history() {
        let s = AfekSnapshot::new(2);
        for v in 0..50 {
            s.update(ProcessId(0), v);
            s.update(ProcessId(1), v);
        }
        drop(s); // Miri/asan would flag leaks or UAF here
    }
}
