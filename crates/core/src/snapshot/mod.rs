//! Single-writer atomic snapshot implementations.
//!
//! | Implementation | `Scan` | `Update` | Progress |
//! |---|---|---|---|
//! | [`DoubleCollectSnapshot`] | `O(N)` per attempt, unbounded attempts | `O(1)` | obstruction-free |
//! | [`AfekSnapshot`] | `O(N²)` | `O(N²)` | wait-free (helping) |
//! | [`PathCopySnapshot`] | `O(N)` (`O(1)` to pin a consistent view) | `O(log N)` uncontended | lock-free, restricted use |
//!
//! These sit at different points of the scan/update tradeoff that
//! Corollary 1 of the paper proves inherent: `O(f(N))`-step scans force
//! `Ω(log(N / f(N)))`-step updates. The double-collect snapshot pays on
//! the scan side, the path-copying snapshot on the update side, and the
//! Afek et al. snapshot pays everywhere in exchange for wait-freedom
//! from reads and writes alone.
//!
//! The paper references (but does not construct) the restricted-use
//! snapshot of Aspnes et al. [PODC 2012] with `O(log N)` scans; see
//! `DESIGN.md` for why that separate construction is represented here by
//! the implementations above.

mod afek;
mod double_collect;
mod path_copy;
pub mod sim;

pub use afek::AfekSnapshot;
pub use double_collect::{DoubleCollectSnapshot, MAX_SEGMENT_VALUE};
pub use path_copy::{PathCopySnapshot, SnapshotView};
