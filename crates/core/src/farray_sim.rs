//! Simulator step machines for the generic f-array.
//!
//! Mirrors [`crate::farray`] against [`ruo_sim`] base objects: the
//! aggregate read is exactly one step, a slot update is the leaf write
//! plus double-CAS propagation — so the substrate's step claims can be
//! measured (and adversarially scheduled) just like the paper's objects.

use std::marker::PhantomData;
use std::sync::Arc;

use ruo_sim::{cas, done, read, write, Machine, Memory, ObjId, ProcessId, Step, Word};

use crate::farray::Aggregation;
use crate::shape::TreeShape;

/// One propagation level for the generic aggregation.
#[derive(Clone, Copy, Debug)]
struct AggLevel {
    node: ObjId,
    left: Option<ObjId>,
    right: Option<ObjId>,
}

/// The generic f-array as simulator step machines.
#[derive(Debug)]
pub struct SimFArray<A: Aggregation> {
    shape: Arc<TreeShape>,
    root: usize,
    leaves: Vec<usize>,
    cells: Arc<Vec<ObjId>>,
    _agg: PhantomData<A>,
}

fn read_opt<A: Aggregation>(
    obj: Option<ObjId>,
    k: impl FnOnce(Word) -> Step + Send + 'static,
) -> Step {
    match obj {
        Some(o) => read(o, k),
        None => k(A::identity()),
    }
}

fn propagate_agg<A: Aggregation>(levels: Arc<Vec<AggLevel>>, i: usize, attempt: u8) -> Step {
    if i == levels.len() {
        return done(0);
    }
    let lv = levels[i];
    read(lv.node, move |old| {
        read_opt::<A>(lv.left, move |l| {
            read_opt::<A>(lv.right, move |r| {
                cas(lv.node, old, A::combine(l, r), move |_| {
                    if attempt == 0 {
                        propagate_agg::<A>(levels, i, 1)
                    } else {
                        propagate_agg::<A>(levels, i + 1, 0)
                    }
                })
            })
        })
    })
}

impl<A: Aggregation> SimFArray<A> {
    /// Allocates the tree's cells (all at the identity) in `mem` for `n`
    /// slots.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(mem: &mut Memory, n: usize) -> Self {
        assert!(n >= 1, "at least one slot required");
        let mut shape = TreeShape::new();
        let (root, leaves) = shape.build_complete(n);
        shape.fix_depths(root);
        let cells = mem.alloc_n(shape.len(), A::identity());
        SimFArray {
            shape: Arc::new(shape),
            root,
            leaves,
            cells: Arc::new(cells),
            _agg: PhantomData,
        }
    }

    /// Number of slots.
    pub fn n(&self) -> usize {
        self.leaves.len()
    }

    /// A one-step read of the aggregate.
    pub fn read(&self) -> Machine {
        let root = self.cells[self.root];
        Machine::new(read(root, done))
    }

    /// The root cell, for wrappers that post-process the raw aggregate
    /// word (e.g. decoding `-∞` sentinels).
    pub fn root_cell(&self) -> ObjId {
        self.cells[self.root]
    }

    /// A monotone read-modify-write: reads `pid`'s slot, combines it
    /// with `value`, and — only if the slot actually changes —
    /// writes and propagates. A dominated merge costs exactly 1 step
    /// (the slot read); an effective one costs `O(log N)`.
    ///
    /// For `Max` this is a max-register `WriteMax`; for `Sum` it adds
    /// `value` to the slot; for `Min` it lowers the slot.
    pub fn merge(&self, pid: ProcessId, value: Word) -> Machine {
        let leaf = self.leaves[pid.index()];
        let leaf_cell = self.cells[leaf];
        let levels = self.levels_from(leaf);
        Machine::new(read(leaf_cell, move |old| {
            let new = A::combine(old, value);
            if new == old {
                done(0)
            } else {
                write(leaf_cell, new, move || propagate_agg::<A>(levels, 0, 0))
            }
        }))
    }

    fn levels_from(&self, leaf: usize) -> Arc<Vec<AggLevel>> {
        Arc::new(
            self.shape
                .ancestors(leaf)
                .into_iter()
                .map(|a| {
                    let info = self.shape.node(a);
                    AggLevel {
                        node: self.cells[a],
                        left: info.left.map(|i| self.cells[i]),
                        right: info.right.map(|i| self.cells[i]),
                    }
                })
                .collect(),
        )
    }

    /// An `O(log N)`-step update of `pid`'s slot to `value`.
    ///
    /// The machine asserts monotonicity against the slot's value at the
    /// moment of its leaf read (the same contract as the real
    /// implementation).
    ///
    /// # Panics
    ///
    /// The machine panics mid-run on a non-monotone update.
    pub fn update(&self, pid: ProcessId, value: Word) -> Machine {
        let leaf = self.leaves[pid.index()];
        let leaf_cell = self.cells[leaf];
        let levels = self.levels_from(leaf);
        Machine::new(read(leaf_cell, move |old| {
            assert!(
                A::advances(old, value),
                "non-monotone slot update {old} -> {value}"
            );
            write(leaf_cell, value, move || propagate_agg::<A>(levels, 0, 0))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farray::{Max, Min, Sum};
    use ruo_sim::run_solo;

    #[test]
    fn read_is_one_step_for_every_aggregation() {
        let mut mem = Memory::new();
        let sum = SimFArray::<Sum>::new(&mut mem, 8);
        let max = SimFArray::<Max>::new(&mut mem, 8);
        let min = SimFArray::<Min>::new(&mut mem, 8);
        for m in [sum.read(), max.read(), min.read()] {
            let (_, steps) = run_solo(&mut mem, ProcessId(0), m);
            assert_eq!(steps, 1);
        }
    }

    #[test]
    fn sum_aggregates_updates() {
        let mut mem = Memory::new();
        let fa = SimFArray::<Sum>::new(&mut mem, 4);
        run_solo(&mut mem, ProcessId(0), fa.update(ProcessId(0), 3));
        run_solo(&mut mem, ProcessId(2), fa.update(ProcessId(2), 5));
        let (v, _) = run_solo(&mut mem, ProcessId(1), fa.read());
        assert_eq!(v, 8);
    }

    #[test]
    fn max_and_min_aggregate_correctly() {
        let mut mem = Memory::new();
        let max = SimFArray::<Max>::new(&mut mem, 3);
        run_solo(&mut mem, ProcessId(0), max.update(ProcessId(0), 7));
        run_solo(&mut mem, ProcessId(1), max.update(ProcessId(1), 4));
        let (v, _) = run_solo(&mut mem, ProcessId(2), max.read());
        assert_eq!(v, 7);

        let min = SimFArray::<Min>::new(&mut mem, 3);
        run_solo(&mut mem, ProcessId(0), min.update(ProcessId(0), 7));
        run_solo(&mut mem, ProcessId(1), min.update(ProcessId(1), 4));
        let (v, _) = run_solo(&mut mem, ProcessId(2), min.read());
        assert_eq!(v, 4);
    }

    #[test]
    fn update_cost_is_logarithmic() {
        for n in [2usize, 16, 128] {
            let mut mem = Memory::new();
            let fa = SimFArray::<Sum>::new(&mut mem, n);
            let (_, steps) = run_solo(&mut mem, ProcessId(0), fa.update(ProcessId(0), 1));
            let depth = (n as f64).log2().ceil() as usize;
            assert!(steps <= 2 + 8 * depth, "n={n}: {steps} steps");
        }
    }

    #[test]
    fn interleaved_updates_converge() {
        let mut mem = Memory::new();
        let n = 4;
        let fa = SimFArray::<Sum>::new(&mut mem, n);
        let mut machines: Vec<(ProcessId, Machine)> = (0..n)
            .map(|i| (ProcessId(i), fa.update(ProcessId(i), i as Word + 1)))
            .collect();
        // Lock-step interleaving.
        loop {
            let mut progressed = false;
            for (pid, m) in machines.iter_mut() {
                if let Some(prim) = m.enabled() {
                    let resp = mem.apply(*pid, prim);
                    m.feed(resp);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        let (v, _) = run_solo(&mut mem, ProcessId(0), fa.read());
        assert_eq!(v, (1..=n as Word).sum::<Word>());
    }

    #[test]
    fn non_monotone_update_panics_mid_run() {
        let mut mem = Memory::new();
        let fa = SimFArray::<Sum>::new(&mut mem, 2);
        run_solo(&mut mem, ProcessId(0), fa.update(ProcessId(0), 5));
        let mut m = fa.update(ProcessId(0), 3);
        let prim = m.enabled().unwrap();
        let resp = mem.apply(ProcessId(0), prim);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.feed(resp)));
        assert!(result.is_err());
    }
}
