//! The Bentley–Yao B1 tree: an unbounded-search tree shape in which the
//! `v`-th leaf sits at depth `O(log v)`.
//!
//! Algorithm A uses a B1 tree with `N − 1` leaves as the left subtree
//! `TL` of its max-register tree: `WriteMax(v)` for a small value `v`
//! starts at `TL`'s `v`-th leaf and climbs only `O(log v)` levels, which
//! is what makes the write cost `O(min(log N, log v))` instead of
//! `O(log N)`.
//!
//! The shape is a rightward *spine*: the spine node at spine-depth `g`
//! hangs a complete binary tree with `2^g` leaves off its left side and
//! the next spine node off its right. Leaf `v` (1-based) therefore lands
//! in group `g = ⌊log₂(v + 1)⌋ - ... ` — concretely, group `g` covers
//! leaves `2^g .. 2^(g+1) - 1`, at total depth at most `2g + 1`.

use crate::shape::{NodeIdx, TreeShape};

/// The group (spine level) containing the 1-based leaf `v`: group `g`
/// covers leaves `2^g ..= 2^(g+1) - 1`.
#[inline]
pub fn group_of(v: usize) -> usize {
    debug_assert!(v >= 1);
    (usize::BITS - 1 - v.leading_zeros()) as usize
}

/// Number of leaves in group `g` of an unbounded B1 tree.
#[inline]
pub fn group_size(g: usize) -> usize {
    1 << g
}

/// Upper bound on the depth of the 1-based leaf `v` inside the B1
/// subtree: spine descent `g`, plus one edge into the group's complete
/// subtree, plus the subtree's height `g`.
#[inline]
pub fn depth_bound(v: usize) -> usize {
    2 * group_of(v) + 1
}

/// Builds a B1 tree with `leaf_count ≥ 1` leaves into `shape`, returning
/// the subtree root and the leaves in value order (leaf `i` of the
/// returned vector is the `(i + 1)`-th leaf of the tree).
pub(crate) fn build_b1(shape: &mut TreeShape, leaf_count: usize) -> (NodeIdx, Vec<NodeIdx>) {
    assert!(leaf_count >= 1);
    // Split leaves into groups of sizes 1, 2, 4, ... (last group partial).
    let mut groups = Vec::new();
    let mut remaining = leaf_count;
    let mut g = 0usize;
    while remaining > 0 {
        let size = group_size(g).min(remaining);
        groups.push(size);
        remaining -= size;
        g += 1;
    }

    let mut leaves = Vec::with_capacity(leaf_count);
    // Build the spine top-down. Each spine node's left child is its
    // group's complete subtree; its right child is the next spine node.
    // The deepest group needs no spine node of its own: its subtree root
    // *is* the previous spine node's right child.
    let mut spine_nodes = Vec::new();
    let mut group_roots = Vec::new();
    for &size in &groups {
        let (root, group_leaves) = shape.build_complete(size);
        group_roots.push(root);
        leaves.extend(group_leaves);
    }
    if groups.len() == 1 {
        return (group_roots[0], leaves);
    }
    for _ in 0..groups.len() - 1 {
        spine_nodes.push(shape.add_node());
    }
    for (i, &spine) in spine_nodes.iter().enumerate() {
        let right = if i + 1 < spine_nodes.len() {
            spine_nodes[i + 1]
        } else {
            group_roots[groups.len() - 1]
        };
        shape.set_children(spine, Some(group_roots[i]), Some(right));
    }
    (spine_nodes[0], leaves)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn built(leaf_count: usize) -> (TreeShape, NodeIdx, Vec<NodeIdx>) {
        let mut shape = TreeShape::new();
        let (root, leaves) = build_b1(&mut shape, leaf_count);
        shape.fix_depths(root);
        (shape, root, leaves)
    }

    #[test]
    fn group_math_matches_powers_of_two() {
        assert_eq!(group_of(1), 0);
        assert_eq!(group_of(2), 1);
        assert_eq!(group_of(3), 1);
        assert_eq!(group_of(4), 2);
        assert_eq!(group_of(7), 2);
        assert_eq!(group_of(8), 3);
        assert_eq!(group_size(3), 8);
    }

    #[test]
    fn produces_exactly_the_requested_leaves() {
        for k in 1..=100 {
            let (shape, _, leaves) = built(k);
            assert_eq!(leaves.len(), k);
            for &l in &leaves {
                assert!(shape.node(l).is_leaf());
            }
        }
    }

    #[test]
    fn leaf_depths_respect_the_bentley_yao_bound() {
        let (shape, _, leaves) = built(1000);
        for (i, &l) in leaves.iter().enumerate() {
            let v = i + 1;
            let d = shape.node(l).depth;
            assert!(
                d <= depth_bound(v),
                "leaf {v} at depth {d} > bound {}",
                depth_bound(v)
            );
        }
    }

    #[test]
    fn first_leaf_is_shallow_even_in_huge_trees() {
        // Leaf 1 must stay at depth 1 regardless of tree size — this is
        // the whole point of the B1 shape.
        for k in [1usize, 2, 10, 1 << 16] {
            let (shape, _, leaves) = built(k);
            assert!(shape.node(leaves[0]).depth <= 1, "k={k}");
        }
    }

    #[test]
    fn depth_grows_with_value() {
        let (shape, _, leaves) = built(512);
        // Depth of leaf 2^g is about 2g; check rough growth.
        let d1 = shape.node(leaves[0]).depth;
        let d511 = shape.node(leaves[510]).depth;
        assert!(d1 < d511);
        assert!(d511 <= depth_bound(511));
    }

    #[test]
    fn single_leaf_tree_is_just_the_leaf() {
        let (shape, root, leaves) = built(1);
        assert_eq!(root, leaves[0]);
        assert_eq!(shape.len(), 1);
    }

    #[test]
    fn all_nodes_reachable_from_root() {
        let (shape, root, _) = built(77);
        let mut seen = vec![false; shape.len()];
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            assert!(!seen[n], "node {n} reached twice — not a tree");
            seen[n] = true;
            if let Some(l) = shape.node(n).left {
                stack.push(l);
            }
            if let Some(r) = shape.node(n).right {
                stack.push(r);
            }
        }
        assert!(seen.iter().all(|&s| s), "orphan nodes exist");
    }
}
