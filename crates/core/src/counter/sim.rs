//! Simulator step machines for the counters.
//!
//! The exact step counts measured here feed the Theorem 1 experiment:
//! the Lemma 1 adversary in `ruo-lowerbound` drives these machines one
//! enabled event at a time.

use std::sync::Arc;

use ruo_sim::{cas, done, read, write, Machine, Memory, ObjId, ProcessId, Step, Word};

use crate::maxreg::aac::AacShape;
use crate::maxreg::sim::{aac_read_k, aac_write};
use crate::shape::TreeShape;

/// A counter whose operations are simulator step machines.
pub trait SimCounter: Send + Sync {
    /// Number of processes the counter supports.
    fn n(&self) -> usize;

    /// A `CounterIncrement` by `pid` as a step machine.
    fn increment(&self, pid: ProcessId) -> Machine;

    /// A `CounterRead` as a step machine; the machine's result is the
    /// count.
    fn read(&self, pid: ProcessId) -> Machine;
}

/// One sum-propagation level: parent cell plus child cells.
#[derive(Clone, Copy, Debug)]
struct SumLevel {
    node: ObjId,
    left: Option<ObjId>,
    right: Option<ObjId>,
}

fn read_opt_zero(obj: Option<ObjId>, k: impl FnOnce(Word) -> Step + Send + 'static) -> Step {
    match obj {
        Some(o) => read(o, k),
        None => k(0),
    }
}

/// Double-CAS sum propagation (the f-array analogue of Algorithm A's
/// `Propagate`).
fn propagate_sum(levels: Arc<Vec<SumLevel>>, i: usize, attempt: u8) -> Step {
    if i == levels.len() {
        return done(0);
    }
    let lv = levels[i];
    read(lv.node, move |old| {
        read_opt_zero(lv.left, move |l| {
            read_opt_zero(lv.right, move |r| {
                cas(lv.node, old, l + r, move |_| {
                    if attempt == 0 {
                        propagate_sum(levels, i, 1)
                    } else {
                        propagate_sum(levels, i + 1, 0)
                    }
                })
            })
        })
    })
}

/// The f-array counter as step machines: `CounterRead` is exactly one
/// step, `CounterIncrement` is `O(log N)`.
#[derive(Debug)]
pub struct SimFArrayCounter {
    shape: Arc<TreeShape>,
    root: usize,
    leaves: Vec<usize>,
    cells: Arc<Vec<ObjId>>,
}

impl SimFArrayCounter {
    /// Allocates the tree's cells (all `0`) in `mem` for `n` processes.
    pub fn new(mem: &mut Memory, n: usize) -> Self {
        assert!(n >= 1);
        let mut shape = TreeShape::new();
        let (root, leaves) = shape.build_complete(n);
        shape.fix_depths(root);
        let cells = mem.alloc_n(shape.len(), 0);
        SimFArrayCounter {
            shape: Arc::new(shape),
            root,
            leaves,
            cells: Arc::new(cells),
        }
    }
}

impl SimCounter for SimFArrayCounter {
    fn n(&self) -> usize {
        self.leaves.len()
    }

    fn increment(&self, pid: ProcessId) -> Machine {
        let leaf = self.leaves[pid.index()];
        let leaf_cell = self.cells[leaf];
        let levels: Vec<SumLevel> = self
            .shape
            .ancestors(leaf)
            .into_iter()
            .map(|a| {
                let info = self.shape.node(a);
                SumLevel {
                    node: self.cells[a],
                    left: info.left.map(|i| self.cells[i]),
                    right: info.right.map(|i| self.cells[i]),
                }
            })
            .collect();
        let levels = Arc::new(levels);
        Machine::new(read(leaf_cell, move |c| {
            write(leaf_cell, c + 1, move || propagate_sum(levels, 0, 0))
        }))
    }

    fn read(&self, _pid: ProcessId) -> Machine {
        let root = self.cells[self.root];
        Machine::new(read(root, done))
    }
}

/// Reads `cells[i..]` one step at a time, accumulating the sum into
/// `acc`, then continues with the total.
fn collect_sum(
    cells: Arc<Vec<ObjId>>,
    i: usize,
    acc: Word,
    k: Box<dyn FnOnce(Word) -> Step + Send>,
) -> Step {
    if i == cells.len() {
        return k(acc);
    }
    let cell = cells[i];
    read(cell, move |w| collect_sum(cells, i + 1, acc + w, k))
}

/// The combining counter's batch semantics as a *wait-free* step
/// machine: the publication array is modeled by one announce cell per
/// process (single-writer, monotone), and "combining" is an arity-`N`
/// f-array level — read the root, collect every announce cell, CAS the
/// whole batch sum in, twice. The root therefore jumps by whole batches
/// (several processes' pending increments land in one CAS), which is
/// exactly the batch-boundary behaviour the explorer must prove
/// harmless against the counter spec.
///
/// Unlike the real [`CombiningCounter`](crate::counter::CombiningCounter)
/// — whose waiters *block* on a combiner lock and therefore cannot be
/// driven under the explorer's step cap when the adversary stalls the
/// combiner forever — every operation here finishes in a bounded number
/// of its own steps: `CounterIncrement` is `2 + 2(N + 2)` steps,
/// `CounterRead` is 1. The double-collect-and-CAS discipline is sound by
/// the same covering argument as the f-array's two propagation attempts
/// (the argument is arity-independent).
#[derive(Debug)]
pub struct SimCombiningCounter {
    /// `announce[i]`: total increments announced by process `i`.
    announce: Arc<Vec<ObjId>>,
    /// The combined total — the only cell reads touch.
    root: ObjId,
}

impl SimCombiningCounter {
    /// Allocates the announce cells and the root (all `0`) in `mem`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(mem: &mut Memory, n: usize) -> Self {
        assert!(n >= 1);
        SimCombiningCounter {
            announce: Arc::new(mem.alloc_n(n, 0)),
            root: mem.alloc(0),
        }
    }
}

/// One combine attempt: read the root, collect the announce array, CAS
/// the batch sum in; `attempt` selects first or second try.
fn combine_install(announce: Arc<Vec<ObjId>>, root: ObjId, attempt: u8) -> Step {
    let cells = Arc::clone(&announce);
    read(root, move |old| {
        collect_sum(
            cells,
            0,
            0,
            Box::new(move |sum| {
                cas(root, old, sum, move |_| {
                    if attempt == 0 {
                        combine_install(announce, root, 1)
                    } else {
                        done(0)
                    }
                })
            }),
        )
    })
}

impl SimCounter for SimCombiningCounter {
    fn n(&self) -> usize {
        self.announce.len()
    }

    fn increment(&self, pid: ProcessId) -> Machine {
        let cell = self.announce[pid.index()];
        let announce = Arc::clone(&self.announce);
        let root = self.root;
        Machine::new(read(cell, move |c| {
            write(cell, c + 1, move || combine_install(announce, root, 0))
        }))
    }

    fn read(&self, _pid: ProcessId) -> Machine {
        Machine::new(read(self.root, done))
    }
}

/// The sharded counter as step machines: `CounterIncrement` writes the
/// caller's stripe (2 steps, wait-free), `CounterRead` collect-sums all
/// `N` stripes (a single pass — monotone single-writer stripes need no
/// double collect). The far write-optimal end of Theorem 1's curve.
#[derive(Debug)]
pub struct SimShardedCounter {
    stripes: Arc<Vec<ObjId>>,
}

impl SimShardedCounter {
    /// Allocates `n` zeroed stripes in `mem`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(mem: &mut Memory, n: usize) -> Self {
        assert!(n >= 1);
        SimShardedCounter {
            stripes: Arc::new(mem.alloc_n(n, 0)),
        }
    }
}

impl SimCounter for SimShardedCounter {
    fn n(&self) -> usize {
        self.stripes.len()
    }

    fn increment(&self, pid: ProcessId) -> Machine {
        let cell = self.stripes[pid.index()];
        Machine::new(read(cell, move |c| write(cell, c + 1, || done(0))))
    }

    fn read(&self, _pid: ProcessId) -> Machine {
        Machine::new(collect_sum(Arc::clone(&self.stripes), 0, 0, Box::new(done)))
    }
}

/// What an internal node of the AAC counter tree reads below itself.
#[derive(Clone, Debug)]
enum Child {
    /// No child (padding in uneven trees).
    None,
    /// A single-writer leaf cell.
    Leaf(ObjId),
    /// An internal AAC max register (its switch cells).
    Reg(Arc<Vec<ObjId>>),
}

/// One level of the AAC counter's increment path.
#[derive(Clone, Debug)]
struct AacLevel {
    switches: Arc<Vec<ObjId>>,
    left: Child,
    right: Child,
}

fn read_child(shape: Arc<AacShape>, child: Child, k: Box<dyn FnOnce(u64) -> Step + Send>) -> Step {
    match child {
        Child::None => k(0),
        Child::Leaf(cell) => read(cell, move |v| k(v as u64)),
        Child::Reg(switches) => {
            let root = shape.root();
            aac_read_k(shape, switches, root, 0, k)
        }
    }
}

fn aac_counter_up(shape: Arc<AacShape>, levels: Arc<Vec<AacLevel>>, i: usize) -> Step {
    if i == levels.len() {
        return done(0);
    }
    let lv = levels[i].clone();
    let shape_l = Arc::clone(&shape);
    read_child(
        Arc::clone(&shape),
        lv.left,
        Box::new(move |l| {
            let shape_r = Arc::clone(&shape_l);
            let switches = lv.switches;
            read_child(
                Arc::clone(&shape_l),
                lv.right,
                Box::new(move |r| {
                    let root = shape_r.root();
                    let shape_next = Arc::clone(&shape_r);
                    aac_write(
                        Arc::clone(&shape_r),
                        switches,
                        root,
                        l + r,
                        Box::new(move || aac_counter_up(shape_next, levels, i + 1)),
                    )
                }),
            )
        }),
    )
}

/// The AAC read/write-only counter as step machines: `CounterRead` is
/// `O(log M)`, `CounterIncrement` is `O(log N · log M)`.
#[derive(Debug)]
pub struct SimAacCounter {
    tree: Arc<TreeShape>,
    root: usize,
    leaves: Vec<usize>,
    /// Leaf node id -> its single-writer cell.
    leaf_cells: Vec<Option<ObjId>>,
    /// Internal node id -> its max register's switch cells.
    node_switches: Vec<Option<Arc<Vec<ObjId>>>>,
    reg_shape: Arc<AacShape>,
    max_increments: u64,
}

impl SimAacCounter {
    /// Allocates all cells in `mem` for `n` processes and at most
    /// `max_increments` total increments.
    pub fn new(mem: &mut Memory, n: usize, max_increments: u64) -> Self {
        assert!(n >= 1);
        assert!(max_increments >= 1);
        let mut tree = TreeShape::new();
        let (root, leaves) = tree.build_complete(n);
        tree.fix_depths(root);
        let reg_shape = Arc::new(AacShape::new(max_increments + 1));
        let mut leaf_cells = vec![None; tree.len()];
        let mut node_switches = vec![None; tree.len()];
        for idx in 0..tree.len() {
            if tree.node(idx).is_leaf() {
                leaf_cells[idx] = Some(mem.alloc(0));
            } else {
                node_switches[idx] = Some(Arc::new(mem.alloc_n(reg_shape.switch_count(), 0)));
            }
        }
        SimAacCounter {
            tree: Arc::new(tree),
            root,
            leaves,
            leaf_cells,
            node_switches,
            reg_shape,
            max_increments,
        }
    }

    /// The restricted-use bound on total increments.
    pub fn max_increments(&self) -> u64 {
        self.max_increments
    }

    fn child_of(&self, idx: Option<usize>) -> Child {
        match idx {
            None => Child::None,
            Some(i) => match (&self.leaf_cells[i], &self.node_switches[i]) {
                (Some(cell), _) => Child::Leaf(*cell),
                (None, Some(sw)) => Child::Reg(Arc::clone(sw)),
                _ => unreachable!("node is either leaf or internal"),
            },
        }
    }
}

impl SimCounter for SimAacCounter {
    fn n(&self) -> usize {
        self.leaves.len()
    }

    fn increment(&self, pid: ProcessId) -> Machine {
        let leaf = self.leaves[pid.index()];
        let leaf_cell = self.leaf_cells[leaf].expect("leaf has a cell");
        let levels: Vec<AacLevel> = self
            .tree
            .ancestors(leaf)
            .into_iter()
            .map(|a| {
                let info = self.tree.node(a);
                AacLevel {
                    switches: Arc::clone(self.node_switches[a].as_ref().expect("internal node")),
                    left: self.child_of(info.left),
                    right: self.child_of(info.right),
                }
            })
            .collect();
        let levels = Arc::new(levels);
        let shape = Arc::clone(&self.reg_shape);
        Machine::new(read(leaf_cell, move |c| {
            write(leaf_cell, c + 1, move || aac_counter_up(shape, levels, 0))
        }))
    }

    fn read(&self, _pid: ProcessId) -> Machine {
        match (&self.leaf_cells[self.root], &self.node_switches[self.root]) {
            (Some(cell), _) => {
                let cell = *cell;
                Machine::new(read(cell, done))
            }
            (None, Some(sw)) => {
                let shape = Arc::clone(&self.reg_shape);
                let switches = Arc::clone(sw);
                let root = shape.root();
                Machine::new(aac_read_k(
                    shape,
                    switches,
                    root,
                    0,
                    Box::new(|v| done(v as Word)),
                ))
            }
            _ => unreachable!(),
        }
    }
}

/// The single-cell CAS-loop counter as step machines: both operations
/// `O(1)` solo, increments lock-free only.
#[derive(Debug)]
pub struct SimCasLoopCounter {
    cell: ObjId,
    n: usize,
}

impl SimCasLoopCounter {
    /// Allocates the cell (value `0`) in `mem`.
    pub fn new(mem: &mut Memory, n: usize) -> Self {
        SimCasLoopCounter {
            cell: mem.alloc(0),
            n,
        }
    }
}

fn cas_loop_incr(cell: ObjId) -> Step {
    read(cell, move |v| {
        cas(cell, v, v + 1, move |ok| {
            if ok == 1 {
                done(0)
            } else {
                cas_loop_incr(cell)
            }
        })
    })
}

impl SimCounter for SimCasLoopCounter {
    fn n(&self) -> usize {
        self.n
    }

    fn increment(&self, _pid: ProcessId) -> Machine {
        Machine::new(cas_loop_incr(self.cell))
    }

    fn read(&self, _pid: ProcessId) -> Machine {
        let cell = self.cell;
        Machine::new(read(cell, done))
    }
}

/// Corollary 1's reduction as step machines: a counter whose
/// `CounterIncrement` is a single snapshot `Update` (2 steps — the
/// process knows its own count) and whose `CounterRead` is a
/// double-collect `Scan` summed (`Ω(N)` steps, obstruction-free).
///
/// This is the *opposite* end of Theorem 1's tradeoff from the f-array:
/// `O(1)` updates bought with linear reads — and the vehicle by which
/// the paper transports the counter lower bound to snapshots.
#[derive(Debug)]
pub struct SimSnapshotCounter {
    /// Per-process segments packing `(seq << 32) | count`.
    segments: Arc<Vec<ObjId>>,
}

impl SimSnapshotCounter {
    /// Allocates `n` zeroed segments in `mem`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(mem: &mut Memory, n: usize) -> Self {
        assert!(n >= 1);
        SimSnapshotCounter {
            segments: Arc::new(mem.alloc_n(n, 0)),
        }
    }
}

fn snapcount_collect(
    segments: Arc<Vec<ObjId>>,
    i: usize,
    mut acc: Vec<Word>,
    k: Box<dyn FnOnce(Vec<Word>) -> Step + Send>,
) -> Step {
    if i == segments.len() {
        return k(acc);
    }
    let seg = segments[i];
    read(seg, move |w| {
        acc.push(w);
        snapcount_collect(segments, i + 1, acc, k)
    })
}

fn snapcount_scan_sum(segments: Arc<Vec<ObjId>>, prev: Option<Vec<Word>>) -> Step {
    let segs = Arc::clone(&segments);
    snapcount_collect(
        segments,
        0,
        Vec::new(),
        Box::new(move |cur| {
            if prev.as_deref() == Some(cur.as_slice()) {
                let sum: Word = cur.iter().map(|&w| w & 0xFFFF_FFFF).sum();
                done(sum)
            } else {
                snapcount_scan_sum(segs, Some(cur))
            }
        }),
    )
}

impl SimCounter for SimSnapshotCounter {
    fn n(&self) -> usize {
        self.segments.len()
    }

    fn increment(&self, pid: ProcessId) -> Machine {
        let seg = self.segments[pid.index()];
        // Single-writer segment: read own (seq, count), write both
        // incremented — exactly one snapshot Update (Corollary 1).
        Machine::new(read(seg, move |w| {
            let seq = ((w as u64) >> 32) as u32;
            let count = (w as u64) as u32;
            let packed = (((seq.wrapping_add(1) as u64) << 32) | (count + 1) as u64) as Word;
            write(seg, packed, || done(0))
        }))
    }

    fn read(&self, _pid: ProcessId) -> Machine {
        Machine::new(snapcount_scan_sum(Arc::clone(&self.segments), None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruo_sim::run_solo;

    #[test]
    fn farray_read_is_one_step() {
        let mut mem = Memory::new();
        let c = SimFArrayCounter::new(&mut mem, 8);
        let (v, steps) = run_solo(&mut mem, ProcessId(0), c.read(ProcessId(0)));
        assert_eq!(v, 0);
        assert_eq!(steps, 1);
    }

    #[test]
    fn farray_counts_sequential_increments() {
        let mut mem = Memory::new();
        let c = SimFArrayCounter::new(&mut mem, 4);
        for i in 0..8usize {
            run_solo(&mut mem, ProcessId(i % 4), c.increment(ProcessId(i % 4)));
            let (v, _) = run_solo(&mut mem, ProcessId(0), c.read(ProcessId(0)));
            assert_eq!(v, i as Word + 1);
        }
    }

    #[test]
    fn farray_increment_is_logarithmic() {
        for n in [2usize, 8, 64, 256] {
            let mut mem = Memory::new();
            let c = SimFArrayCounter::new(&mut mem, n);
            let (_, steps) = run_solo(&mut mem, ProcessId(0), c.increment(ProcessId(0)));
            let depth = (n as f64).log2().ceil() as usize;
            assert!(
                steps <= 2 + 8 * depth,
                "n={n}: {steps} steps > bound {}",
                2 + 8 * depth
            );
            assert!(steps >= depth, "n={n}: suspiciously few steps {steps}");
        }
    }

    #[test]
    fn aac_counter_counts_sequential_increments() {
        let mut mem = Memory::new();
        let c = SimAacCounter::new(&mut mem, 4, 32);
        for i in 0..8usize {
            run_solo(&mut mem, ProcessId(i % 4), c.increment(ProcessId(i % 4)));
            let (v, _) = run_solo(&mut mem, ProcessId(0), c.read(ProcessId(0)));
            assert_eq!(v, i as Word + 1);
        }
    }

    #[test]
    fn aac_counter_read_is_logarithmic_in_bound() {
        let mut mem = Memory::new();
        let c = SimAacCounter::new(&mut mem, 8, (1 << 10) - 1);
        let (_, steps) = run_solo(&mut mem, ProcessId(0), c.read(ProcessId(0)));
        assert!((10..=11).contains(&steps), "read steps {steps}");
    }

    #[test]
    fn aac_counter_increment_is_log_n_times_log_m() {
        let n = 8usize;
        let m = (1 << 8) - 1;
        let mut mem = Memory::new();
        let c = SimAacCounter::new(&mut mem, n, m);
        let (_, steps) = run_solo(&mut mem, ProcessId(0), c.increment(ProcessId(0)));
        // 3 levels, each ~ two child reads + one WriteMax, all O(log M).
        let bound = 2 + 3 * 3 * 9;
        assert!(steps <= bound, "{steps} > {bound}");
        assert!(steps >= 9, "suspiciously few steps {steps}");
    }

    #[test]
    fn snapshot_counter_counts_and_has_linear_reads() {
        let n = 8;
        let mut mem = Memory::new();
        let c = SimSnapshotCounter::new(&mut mem, n);
        for i in 0..n {
            let (_, steps) = run_solo(&mut mem, ProcessId(i), c.increment(ProcessId(i)));
            assert_eq!(steps, 2, "increment is one snapshot Update");
        }
        let (v, steps) = run_solo(&mut mem, ProcessId(0), c.read(ProcessId(0)));
        assert_eq!(v, n as Word);
        assert_eq!(steps, 2 * n, "solo read is one clean double collect");
    }

    #[test]
    fn snapshot_counter_read_detects_interference() {
        let mut mem = Memory::new();
        let c = SimSnapshotCounter::new(&mut mem, 2);
        let mut rd = c.read(ProcessId(0));
        // First collect (2 reads).
        for _ in 0..2 {
            let p = rd.enabled().unwrap();
            let r = mem.apply(ProcessId(0), p);
            rd.feed(r);
        }
        // Concurrent increment invalidates the collect; the read retries.
        run_solo(&mut mem, ProcessId(1), c.increment(ProcessId(1)));
        while let Some(p) = rd.enabled() {
            let r = mem.apply(ProcessId(0), p);
            rd.feed(r);
        }
        assert!(rd.steps() > 4, "read should have retried");
        assert_eq!(rd.result(), Some(1));
    }

    #[test]
    fn snapshot_counter_same_count_reincrement_is_visible() {
        // The seq half of the word makes every increment visible even
        // when... counts always change here, but the seq also guards
        // against 2^32-wrap aliasing within a collect window.
        let mut mem = Memory::new();
        let c = SimSnapshotCounter::new(&mut mem, 1);
        run_solo(&mut mem, ProcessId(0), c.increment(ProcessId(0)));
        let w1 = mem.peek(c.segments[0]);
        run_solo(&mut mem, ProcessId(0), c.increment(ProcessId(0)));
        let w2 = mem.peek(c.segments[0]);
        assert_ne!(w1, w2);
        assert_ne!((w1 as u64) >> 32, (w2 as u64) >> 32);
    }

    #[test]
    fn combining_read_is_one_step_and_increment_is_bounded() {
        let n = 5;
        let mut mem = Memory::new();
        let c = SimCombiningCounter::new(&mut mem, n);
        let (_, steps) = run_solo(&mut mem, ProcessId(2), c.increment(ProcessId(2)));
        assert_eq!(steps, 2 + 2 * (n + 2), "wait-free bound must be exact solo");
        let (v, steps) = run_solo(&mut mem, ProcessId(0), c.read(ProcessId(0)));
        assert_eq!(v, 1);
        assert_eq!(steps, 1);
    }

    #[test]
    fn combining_counts_sequential_increments() {
        let mut mem = Memory::new();
        let c = SimCombiningCounter::new(&mut mem, 4);
        for i in 0..8usize {
            run_solo(&mut mem, ProcessId(i % 4), c.increment(ProcessId(i % 4)));
            let (v, _) = run_solo(&mut mem, ProcessId(0), c.read(ProcessId(0)));
            assert_eq!(v, i as Word + 1);
        }
    }

    #[test]
    fn combining_batches_land_together() {
        // Three processes announce, none has installed yet; the fourth's
        // combine sweeps the whole pending batch into the root in one
        // CAS — the root jumps straight from 0 to 4.
        let n = 4;
        let mut mem = Memory::new();
        let c = SimCombiningCounter::new(&mut mem, n);
        let mut stalled: Vec<Machine> = (0..3).map(|i| c.increment(ProcessId(i))).collect();
        for (i, m) in stalled.iter_mut().enumerate() {
            // Drive only the announce (read + write), stall before the
            // combine phase.
            for _ in 0..2 {
                let p = m.enabled().unwrap();
                let r = mem.apply(ProcessId(i), p);
                m.feed(r);
            }
        }
        assert_eq!(mem.peek(c.root), 0, "nothing installed yet");
        run_solo(&mut mem, ProcessId(3), c.increment(ProcessId(3)));
        let (v, _) = run_solo(&mut mem, ProcessId(0), c.read(ProcessId(0)));
        assert_eq!(v, 4, "one combine must sweep the whole pending batch");
    }

    #[test]
    fn interleaved_combining_increments_all_count() {
        let mut mem = Memory::new();
        let n = 4;
        let c = SimCombiningCounter::new(&mut mem, n);
        let mut machines: Vec<Machine> = (0..n).map(|i| c.increment(ProcessId(i))).collect();
        loop {
            let mut progressed = false;
            for (i, m) in machines.iter_mut().enumerate() {
                if let Some(p) = m.enabled() {
                    let r = mem.apply(ProcessId(i), p);
                    m.feed(r);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        let (v, _) = run_solo(&mut mem, ProcessId(0), c.read(ProcessId(0)));
        assert_eq!(v, n as Word);
    }

    #[test]
    fn sharded_increment_is_constant_and_read_is_linear() {
        let n = 8;
        let mut mem = Memory::new();
        let c = SimShardedCounter::new(&mut mem, n);
        for i in 0..n {
            let (_, steps) = run_solo(&mut mem, ProcessId(i), c.increment(ProcessId(i)));
            assert_eq!(steps, 2, "stripe bump is read + write");
        }
        let (v, steps) = run_solo(&mut mem, ProcessId(0), c.read(ProcessId(0)));
        assert_eq!(v, n as Word);
        assert_eq!(steps, n, "read is a single collect");
    }

    #[test]
    fn sharded_counts_sequential_increments() {
        let mut mem = Memory::new();
        let c = SimShardedCounter::new(&mut mem, 3);
        for i in 0..9usize {
            run_solo(&mut mem, ProcessId(i % 3), c.increment(ProcessId(i % 3)));
            let (v, _) = run_solo(&mut mem, ProcessId(1), c.read(ProcessId(1)));
            assert_eq!(v, i as Word + 1);
        }
    }

    #[test]
    fn cas_loop_counter_counts() {
        let mut mem = Memory::new();
        let c = SimCasLoopCounter::new(&mut mem, 2);
        run_solo(&mut mem, ProcessId(0), c.increment(ProcessId(0)));
        run_solo(&mut mem, ProcessId(1), c.increment(ProcessId(1)));
        let (v, steps) = run_solo(&mut mem, ProcessId(0), c.read(ProcessId(0)));
        assert_eq!(v, 2);
        assert_eq!(steps, 1);
    }

    #[test]
    fn single_process_counters_degenerate_gracefully() {
        let mut mem = Memory::new();
        let f = SimFArrayCounter::new(&mut mem, 1);
        run_solo(&mut mem, ProcessId(0), f.increment(ProcessId(0)));
        let (v, _) = run_solo(&mut mem, ProcessId(0), f.read(ProcessId(0)));
        assert_eq!(v, 1);

        let a = SimAacCounter::new(&mut mem, 1, 4);
        run_solo(&mut mem, ProcessId(0), a.increment(ProcessId(0)));
        let (v, _) = run_solo(&mut mem, ProcessId(0), a.read(ProcessId(0)));
        assert_eq!(v, 1);
    }

    #[test]
    fn interleaved_farray_increments_all_count() {
        let mut mem = Memory::new();
        let n = 4;
        let c = SimFArrayCounter::new(&mut mem, n);
        let mut machines: Vec<Machine> = (0..n).map(|i| c.increment(ProcessId(i))).collect();
        loop {
            let mut progressed = false;
            for (i, m) in machines.iter_mut().enumerate() {
                if let Some(p) = m.enabled() {
                    let r = mem.apply(ProcessId(i), p);
                    m.feed(r);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        let (v, _) = run_solo(&mut mem, ProcessId(0), c.read(ProcessId(0)));
        assert_eq!(v, n as Word);
    }
}
