//! Sharded (striped) counter: the opposite end of the tradeoff curve.
//!
//! One cache-padded stripe per process — exactly the f-array's leaf
//! layer, *without* the internal sum tree. `CounterIncrement` is a
//! single store into the caller's own stripe (`O(1)`, wait-free, no
//! propagation, no CAS contention); `CounterRead` aggregates by summing
//! every stripe (`O(N)`).
//!
//! In the paper's terms this sits at the far write-optimal end of
//! Theorem 1's curve: updates in `O(1)` force reads to `Ω(N / ...)` —
//! and the stripe collect pays exactly that linear read. The
//! [`CounterMode`](crate::counter::CounterMode) knob makes the choice
//! explicit: `Exact` (f-array: `O(1)` read / `O(log N)` increment),
//! `Combining` (batched climbs, blocking), `Sharded` (this module:
//! `O(1)` increment / `O(N)` read).
//!
//! # Linearizability
//!
//! Each stripe is single-writer and monotone. A collect reads stripe
//! `i` at some instant, so the returned sum lies between the number of
//! increments *completed before the read started* and the number
//! *invoked before it returned* — a valid linearization point exists.
//! Two non-overlapping reads collect each stripe in real-time order, so
//! later reads never report less (stripes never decrease). Stores and
//! collect loads are `SeqCst`, the same single-total-order discipline
//! the f-array's leaf stores rely on (DESIGN.md § Memory orderings).

use std::fmt;
use std::sync::atomic::Ordering;

use ruo_sim::stepcount::CountingU64;
use ruo_sim::ProcessId;

use crate::pad::CachePadded;
use crate::traits::Counter;

/// Per-process striped counter: `O(1)` wait-free increments, `O(N)`
/// collect-sum reads.
///
/// ```
/// use ruo_core::counter::ShardedCounter;
/// use ruo_core::Counter;
/// use ruo_sim::ProcessId;
///
/// let counter = ShardedCounter::new(4);
/// counter.increment(ProcessId(0));
/// counter.increment(ProcessId(3));
/// assert_eq!(counter.read(), 2);
/// assert_eq!(counter.stripe(3), 1);
/// ```
pub struct ShardedCounter {
    /// One padded cell per process; stripe `i` is written only by
    /// process `i` (see [`crate::pad`] for why each owns a line pair).
    stripes: Box<[CachePadded<CountingU64>]>,
}

impl fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedCounter")
            .field("n", &self.n())
            .field("count", &self.read())
            .finish()
    }
}

impl ShardedCounter {
    /// Creates a counter shared by `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "at least one process required");
        ShardedCounter {
            stripes: (0..n)
                .map(|_| CachePadded::new(CountingU64::new(0)))
                .collect(),
        }
    }

    /// Number of processes (and stripes).
    pub fn n(&self) -> usize {
        self.stripes.len()
    }

    /// Current value of stripe `i` — the number of increments by process
    /// `i`. Feeds the per-stripe gauges in `ruo-metrics`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn stripe(&self, i: usize) -> u64 {
        self.stripes[i].load(Ordering::Acquire)
    }

    /// One collect of all stripes, in index order — the raw material of
    /// both [`read`](Counter::read) and the metrics-side imbalance
    /// gauges.
    pub fn stripe_counts(&self) -> Vec<u64> {
        self.stripes
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .collect()
    }
}

impl Counter for ShardedCounter {
    fn increment(&self, pid: ProcessId) {
        let stripe = &self.stripes[pid.index()];
        // Single-writer stripe: Relaxed read of our own last store,
        // SeqCst publication store (same discipline as f-array leaves).
        let c = stripe.load(Ordering::Relaxed);
        stripe.store(c + 1, Ordering::SeqCst);
    }

    fn read(&self) -> u64 {
        // One collect; no double-collect needed — monotone single-writer
        // stripes make a single pass linearizable (module docs).
        self.stripes.iter().map(|s| s.load(Ordering::SeqCst)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_counter_reads_zero() {
        assert_eq!(ShardedCounter::new(4).read(), 0);
    }

    #[test]
    fn sequential_increments_count() {
        let c = ShardedCounter::new(3);
        for i in 0..9usize {
            c.increment(ProcessId(i % 3));
            assert_eq!(c.read(), i as u64 + 1);
        }
        assert_eq!(c.stripe_counts(), vec![3, 3, 3]);
    }

    #[test]
    fn single_process_counter_works() {
        let c = ShardedCounter::new(1);
        c.increment(ProcessId(0));
        c.increment(ProcessId(0));
        assert_eq!(c.read(), 2);
        assert_eq!(c.stripe(0), 2);
    }

    #[test]
    fn concurrent_increments_are_all_counted() {
        let n = 8;
        let per = 5000u64;
        let c = Arc::new(ShardedCounter::new(n));
        std::thread::scope(|s| {
            for i in 0..n {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..per {
                        c.increment(ProcessId(i));
                    }
                });
            }
        });
        assert_eq!(c.read(), n as u64 * per);
        assert!(c.stripe_counts().iter().all(|&s| s == per));
    }

    #[test]
    fn reads_are_monotone_under_concurrency() {
        let c = Arc::new(ShardedCounter::new(4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let c = Arc::clone(&c);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = c.read();
                        assert!(v >= last, "count regressed from {last} to {v}");
                        last = v;
                    }
                });
            }
            let writers: Vec<_> = (0..4usize)
                .map(|i| {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        for _ in 0..3000 {
                            c.increment(ProcessId(i));
                        }
                    })
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(c.read(), 12_000);
    }

    #[test]
    fn read_never_undercounts_completed_increments() {
        let c = Arc::new(ShardedCounter::new(2));
        std::thread::scope(|s| {
            let w = {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..5000 {
                        c.increment(ProcessId(1));
                    }
                })
            };
            let mut last = 0;
            loop {
                let v = c.read();
                assert!(v <= 5000);
                assert!(v >= last);
                last = v;
                if v == 5000 {
                    break;
                }
            }
            w.join().unwrap();
        });
    }
}
