//! Hardware fetch-and-add counter — the out-of-model baseline.
//!
//! `fetch_add` is a stronger primitive than the paper's read/write/CAS
//! model allows, which is exactly why this counter escapes Theorem 1's
//! tradeoff (`O(1)` read *and* `O(1)` increment). It anchors the
//! benchmarks: the gap between this and [`super::FArrayCounter`] is the
//! cost of staying within the model.

use std::fmt;
use std::sync::atomic::Ordering;

use ruo_sim::stepcount::CountingU64;
use ruo_sim::ProcessId;

use crate::pad::CachePadded;
use crate::traits::Counter;

/// `O(1)`/`O(1)` counter using the hardware fetch-and-add primitive.
///
/// ```
/// use ruo_core::counter::FetchAddCounter;
/// use ruo_core::Counter;
/// use ruo_sim::ProcessId;
///
/// let counter = FetchAddCounter::new();
/// counter.increment(ProcessId(0));
/// assert_eq!(counter.read(), 1);
/// ```
#[derive(Default)]
pub struct FetchAddCounter {
    /// Padded so the counter never false-shares with neighbouring
    /// allocations in the embedding structure.
    cell: CachePadded<CountingU64>,
}

impl fmt::Debug for FetchAddCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FetchAddCounter")
            .field("count", &self.read())
            .finish()
    }
}

impl FetchAddCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Counter for FetchAddCounter {
    fn increment(&self, _pid: ProcessId) {
        // Relaxed: the RMW still participates in the cell's total
        // modification order, which alone linearizes increments; the
        // counter publishes nothing but its own value (DESIGN.md
        // § Memory orderings).
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    fn read(&self) -> u64 {
        // Acquire: reads linearize at the load and see every increment
        // that happens-before them.
        self.cell.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_increments() {
        let c = FetchAddCounter::new();
        assert_eq!(c.read(), 0);
        c.increment(ProcessId(0));
        c.increment(ProcessId(1));
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = Arc::new(FetchAddCounter::new());
        let handles: Vec<_> = (0..8usize)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.increment(ProcessId(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.read(), 80_000);
    }
}
