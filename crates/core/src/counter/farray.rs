//! The f-array counter (Jayanti, PODC 2002), CAS variant.
//!
//! A complete binary tree with one leaf per process. Leaf `i` holds the
//! number of increments by process `i` (single-writer); every internal
//! node holds the sum of its children. `CounterIncrement` bumps the
//! caller's leaf and propagates sums to the root with the same
//! double-CAS discipline as Algorithm A's `Propagate`; `CounterRead`
//! reads the root — one step.
//!
//! Jayanti's original construction uses LL/SC; the paper notes it "can
//! be made to work also using CAS", which is what this module does. The
//! usual CAS hazard (ABA) is absent because node values — sums of
//! monotonically growing leaves — never decrease.
//!
//! Together with Theorem 1 this counter is *optimal at the read end* of
//! the tradeoff curve: `f(N) = O(1)` forces increments to `Ω(log N)`,
//! and it achieves `O(log N)`.

use std::fmt;
use std::sync::atomic::Ordering;

use ruo_sim::stepcount::CountingU64;
use ruo_sim::ProcessId;

use crate::pad::CachePadded;
use crate::shape::{PathNode, TreeShape, NO_CHILD};
use crate::traits::Counter;

/// Wait-free counter with `O(1)` reads and `O(log N)` increments from
/// read/write/CAS.
///
/// ```
/// use ruo_core::counter::FArrayCounter;
/// use ruo_core::Counter;
/// use ruo_sim::ProcessId;
///
/// let counter = FArrayCounter::new(4);
/// counter.increment(ProcessId(0));
/// counter.increment(ProcessId(3));
/// assert_eq!(counter.read(), 2);
/// ```
pub struct FArrayCounter {
    root: usize,
    leaves: Vec<usize>,
    /// Padded cells: one cache-line pair per node (see [`crate::pad`]).
    cells: Box<[CachePadded<CountingU64>]>,
    /// Precomputed leaf-to-root propagation paths, indexed by process.
    paths: Vec<Box<[PathNode]>>,
}

impl fmt::Debug for FArrayCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FArrayCounter")
            .field("n", &self.leaves.len())
            .field("count", &self.read())
            .finish()
    }
}

impl FArrayCounter {
    /// Creates a counter shared by `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "at least one process required");
        let mut shape = TreeShape::new();
        let (root, leaves) = shape.build_complete(n);
        shape.fix_depths(root);
        let cells = (0..shape.len())
            .map(|_| CachePadded::new(CountingU64::new(0)))
            .collect();
        let paths = leaves
            .iter()
            .map(|&leaf| shape.propagation_path(leaf))
            .collect();
        FArrayCounter {
            root,
            leaves,
            cells,
            paths,
        }
    }

    /// Number of processes sharing the counter.
    pub fn n(&self) -> usize {
        self.leaves.len()
    }

    /// Adds `k` to the counter in **one** leaf-to-root propagation:
    /// bumps the caller's leaf by `k` and runs the double-CAS climb
    /// once, so a batch of `k` pending increments costs the same
    /// `O(log N)` shared-memory steps as a single increment.
    ///
    /// This is the aggregation primitive behind
    /// [`CombiningCounter`](crate::counter::CombiningCounter): the
    /// combiner drains its publication array and applies the whole batch
    /// through this method. `add(pid, 0)` is a no-op (no leaf store, no
    /// propagation) so callers need not special-case empty batches.
    pub fn add(&self, pid: ProcessId, k: u64) {
        if k == 0 {
            return;
        }
        let leaf = self.leaves[pid.index()];
        // Single-writer leaf: read + write suffices, and the read is
        // Relaxed because it returns our own last store.
        let c = self.cells[leaf].load(Ordering::Relaxed);
        // SeqCst: the store must be ordered before the sibling reads
        // below (store-buffering — DESIGN.md § Memory orderings).
        self.cells[leaf].store(c + k, Ordering::SeqCst);
        for step in &self.paths[pid.index()] {
            let node = step.node as usize;
            for _ in 0..2 {
                let old = self.cells[node].load(Ordering::SeqCst);
                let new = self.child_load(step.left) + self.child_load(step.right);
                // Sums are monotone, so `new >= old` always; equality
                // means the node already covers what we just read.
                if new == old {
                    break;
                }
                // A failed CAS means someone else already installed a
                // value covering ours (or will, on their second attempt);
                // Acquire failure orders that covering write before our
                // completion.
                if self.cells[node]
                    .compare_exchange(old, new, Ordering::SeqCst, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
            }
        }
    }

    #[inline]
    fn child_load(&self, idx: u32) -> u64 {
        // SeqCst: sibling reads pair with leaf stores in the
        // store-buffering pattern of the propagation (DESIGN.md
        // § Memory orderings).
        if idx == NO_CHILD {
            0
        } else {
            self.cells[idx as usize].load(Ordering::SeqCst)
        }
    }
}

impl Counter for FArrayCounter {
    fn increment(&self, pid: ProcessId) {
        self.add(pid, 1);
    }

    fn read(&self) -> u64 {
        // Acquire: the read linearizes at this load; node values are
        // monotone and covering writes are at-least-Release.
        self.cells[self.root].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_counter_reads_zero() {
        assert_eq!(FArrayCounter::new(4).read(), 0);
    }

    #[test]
    fn sequential_increments_count() {
        let c = FArrayCounter::new(3);
        for i in 0..9usize {
            c.increment(ProcessId(i % 3));
            assert_eq!(c.read(), i as u64 + 1);
        }
    }

    #[test]
    fn add_applies_a_whole_batch_in_one_propagation() {
        let c = FArrayCounter::new(4);
        c.add(ProcessId(0), 0); // empty batch is a no-op
        assert_eq!(c.read(), 0);
        c.add(ProcessId(1), 57);
        assert_eq!(c.read(), 57);
        c.add(ProcessId(1), 3);
        c.increment(ProcessId(2));
        assert_eq!(c.read(), 61);
    }

    #[test]
    fn concurrent_batched_adds_are_all_counted() {
        let n = 4;
        let c = Arc::new(FArrayCounter::new(n));
        std::thread::scope(|s| {
            for i in 0..n {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for k in 1..=100u64 {
                        c.add(ProcessId(i), k);
                    }
                });
            }
        });
        assert_eq!(c.read(), n as u64 * 5050);
    }

    #[test]
    fn single_process_counter_works() {
        let c = FArrayCounter::new(1);
        c.increment(ProcessId(0));
        c.increment(ProcessId(0));
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn concurrent_increments_are_all_counted() {
        let n = 8;
        let per = 1000u64;
        let c = Arc::new(FArrayCounter::new(n));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        c.increment(ProcessId(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.read(), n as u64 * per);
    }

    #[test]
    fn reads_are_monotone_under_concurrency() {
        let c = Arc::new(FArrayCounter::new(4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let c = Arc::clone(&c);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = 0;
                while !stop.load(Ordering::Relaxed) {
                    let v = c.read();
                    assert!(v >= last, "count regressed from {last} to {v}");
                    last = v;
                }
            })
        };
        let writers: Vec<_> = (0..4usize)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        c.increment(ProcessId(i));
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(c.read(), 8000);
    }

    #[test]
    fn read_never_overshoots_completed_increments() {
        // A read concurrent with increments must stay within
        // [completed, invoked]; after everything joins, exact.
        let c = Arc::new(FArrayCounter::new(2));
        let w = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for _ in 0..5000 {
                    c.increment(ProcessId(1));
                }
            })
        };
        let mut last = 0;
        loop {
            let v = c.read();
            assert!(v <= 5000);
            assert!(v >= last);
            last = v;
            if v == 5000 {
                break;
            }
        }
        w.join().unwrap();
    }
}
