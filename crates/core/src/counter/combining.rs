//! Flat-combining front-end for the f-array counter.
//!
//! Under a write-heavy contended workload the exact
//! [`FArrayCounter`](crate::counter::FArrayCounter) pays one full
//! `O(log N)` double-CAS climb per increment, and every climb fights
//! every other climb over the upper tree levels. Flat combining
//! (Hendler, Incze, Shavit, Tzafrir, SPAA 2010) turns that into one
//! climb per *batch*: each thread publishes its pending increment count
//! in a single-writer publication slot, and whichever thread holds the
//! combiner lock drains all slots and applies the aggregated delta
//! through [`FArrayCounter::add`] — one leaf bump plus one propagation
//! for the whole batch.
//!
//! The tradeoff, in the paper's terms: `CounterRead` stays `O(1)` (the
//! f-array root), the *amortized* increment cost under contention drops
//! toward `O(log N / batch)`, but the progress guarantee weakens from
//! wait-free to **blocking** — a waiter spins until a combiner services
//! its slot, and a crashed combiner strands everyone. This front-end
//! deliberately trades the paper's worst-case step bound for contended
//! throughput; the scenario registry records it as
//! [`ProgressClass::Blocking`](../../ruo_scenario/enum.ProgressClass.html).
//!
//! # Linearizability
//!
//! * `requested[i]` is single-writer (process `i`) and monotone;
//!   `serviced[i]` is written only by combiners, under the lock, and is
//!   monotone.
//! * A combiner first collects `requested`, then applies the aggregated
//!   delta via `add` (which returns only after the batch is visible at
//!   the root), and only *then* publishes `serviced[i] = collected[i]`
//!   with `Release` stores.
//! * An `increment` returns only once an `Acquire` load sees
//!   `serviced[i] ≥` its request number, so its increment is already
//!   reflected by every subsequent `CounterRead` of the root: linearize
//!   the increment at the root CAS that first covered its batch.
//! * `CounterRead` can only over-report *invoked* increments, never
//!   phantom ones: a request is collected only after its publication
//!   store, which happens inside the increment's interval.

use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::OnceLock;

use ruo_sim::stepcount::CountingU64;
use ruo_sim::ProcessId;

use crate::counter::FArrayCounter;
use crate::pad::CachePadded;
use crate::traits::Counter;

/// How many `spin_loop` hints a waiter issues between checks before
/// yielding its timeslice. On a single-core host spinning is pure
/// waste — the combiner cannot make progress until the waiter is
/// descheduled — so waiters yield immediately there (the measured W8
/// single-core loss came from waiters burning the combiner's
/// timeslice 64 hints at a time).
fn spin_limit() -> u32 {
    static LIMIT: OnceLock<u32> = OnceLock::new();
    *LIMIT.get_or_init(|| {
        match std::thread::available_parallelism() {
            Ok(cores) if cores.get() == 1 => 0,
            // Unknown parallelism gets the multi-core behavior.
            _ => 64,
        }
    })
}

/// One publication slot, padded so spinning on `serviced` never
/// invalidates a neighbour's slot.
#[derive(Debug, Default)]
struct Slot {
    /// Total increments requested by the owning process (single-writer).
    requested: CountingU64,
    /// Total increments applied on behalf of the owning process; written
    /// only by combiners, under the lock.
    serviced: CountingU64,
    /// Combiner scratch: the `requested` value collected in the current
    /// batch, staged between the aggregate `add` and the `serviced`
    /// publication. Written only under the lock.
    staged: CountingU64,
}

/// Batched-increment counter: `O(1)` reads, one aggregated f-array
/// propagation per combined batch, blocking progress.
///
/// ```
/// use ruo_core::counter::CombiningCounter;
/// use ruo_core::Counter;
/// use ruo_sim::ProcessId;
///
/// let counter = CombiningCounter::new(4);
/// counter.increment(ProcessId(0));
/// counter.increment(ProcessId(3));
/// assert_eq!(counter.read(), 2);
/// ```
pub struct CombiningCounter {
    inner: FArrayCounter,
    /// Combiner lock: 0 free, 1 held.
    lock: CachePadded<CountingU64>,
    slots: Box<[CachePadded<Slot>]>,
}

impl fmt::Debug for CombiningCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CombiningCounter")
            .field("n", &self.n())
            .field("count", &self.read())
            .finish()
    }
}

impl CombiningCounter {
    /// Creates a counter shared by `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "at least one process required");
        CombiningCounter {
            inner: FArrayCounter::new(n),
            lock: CachePadded::new(CountingU64::new(0)),
            slots: (0..n).map(|_| CachePadded::new(Slot::default())).collect(),
        }
    }

    /// Number of processes sharing the counter.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Drains every publication slot and applies the aggregated delta in
    /// one propagation. Caller must hold the lock.
    fn combine(&self, pid: ProcessId) {
        let mut delta = 0u64;
        for slot in &self.slots {
            // Acquire pairs with the publisher's store so the request
            // count is a value the owner actually published.
            let r = slot.requested.load(Ordering::Acquire);
            // `serviced` is combiner-owned (lock-protected): Relaxed.
            let s = slot.serviced.load(Ordering::Relaxed);
            slot.staged.store(r, Ordering::Relaxed);
            delta += r - s;
        }
        // One aggregated propagation for the whole batch. The combiner
        // charges the batch to its *own* leaf — leaves stay
        // single-writer, and the root still sums to the global count.
        self.inner.add(pid, delta);
        // Only after the batch is visible at the root may the waiters be
        // released; Release pairs with the waiter's Acquire.
        for slot in &self.slots {
            let r = slot.staged.load(Ordering::Relaxed);
            if r != slot.serviced.load(Ordering::Relaxed) {
                slot.serviced.store(r, Ordering::Release);
            }
        }
    }
}

impl Counter for CombiningCounter {
    fn increment(&self, pid: ProcessId) {
        let slot = &self.slots[pid.index()];
        // Publish: single-writer slot, so read-own + store suffices.
        // SeqCst store: the publication must be ordered before the lock
        // CAS / serviced loads below (store-buffering with a concurrent
        // combiner's collect).
        let r = slot.requested.load(Ordering::Relaxed) + 1;
        slot.requested.store(r, Ordering::SeqCst);
        let mut spins = 0u32;
        loop {
            // Serviced by a concurrent combiner?
            if slot.serviced.load(Ordering::Acquire) >= r {
                return;
            }
            // Otherwise try to become the combiner ourselves.
            if self
                .lock
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.combine(pid);
                self.lock.store(0, Ordering::Release);
                // Our own collect read our own `requested` store
                // (same-thread program order), so we are serviced.
                debug_assert!(slot.serviced.load(Ordering::Relaxed) >= r);
                return;
            }
            // Spin briefly, then yield: when threads outnumber cores the
            // combiner may be descheduled mid-batch, and burning whole
            // timeslices spinning against it inverts the combining win.
            // On single-core hosts the limit is 0: yield straight away.
            spins += 1;
            if spins < spin_limit() {
                std::hint::spin_loop();
            } else {
                spins = 0;
                std::thread::yield_now();
            }
        }
    }

    fn read(&self) -> u64 {
        self.inner.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_counter_reads_zero() {
        assert_eq!(CombiningCounter::new(4).read(), 0);
    }

    #[test]
    fn spin_limit_matches_host_parallelism() {
        let limit = spin_limit();
        match std::thread::available_parallelism() {
            Ok(cores) if cores.get() == 1 => {
                assert_eq!(limit, 0, "single-core hosts must yield immediately");
            }
            _ => assert_eq!(limit, 64),
        }
    }

    #[test]
    fn sequential_increments_count() {
        let c = CombiningCounter::new(3);
        for i in 0..9usize {
            c.increment(ProcessId(i % 3));
            assert_eq!(c.read(), i as u64 + 1);
        }
    }

    #[test]
    fn single_process_counter_works() {
        let c = CombiningCounter::new(1);
        c.increment(ProcessId(0));
        c.increment(ProcessId(0));
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn concurrent_increments_are_all_counted() {
        let n = 8;
        let per = 2000u64;
        let c = Arc::new(CombiningCounter::new(n));
        std::thread::scope(|s| {
            for i in 0..n {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..per {
                        c.increment(ProcessId(i));
                    }
                });
            }
        });
        assert_eq!(c.read(), n as u64 * per);
    }

    #[test]
    fn reads_are_monotone_under_concurrency() {
        let c = Arc::new(CombiningCounter::new(4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let c = Arc::clone(&c);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let v = c.read();
                        assert!(v >= last, "count regressed from {last} to {v}");
                        last = v;
                    }
                });
            }
            let writers: Vec<_> = (0..4usize)
                .map(|i| {
                    let c = Arc::clone(&c);
                    s.spawn(move || {
                        for _ in 0..2000 {
                            c.increment(ProcessId(i));
                        }
                    })
                })
                .collect();
            for w in writers {
                w.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(c.read(), 8000);
    }

    #[test]
    fn own_increment_is_visible_immediately_after_return() {
        let c = Arc::new(CombiningCounter::new(4));
        std::thread::scope(|s| {
            for i in 0..4usize {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let mut mine = 0u64;
                    for _ in 0..1000 {
                        c.increment(ProcessId(i));
                        mine += 1;
                        assert!(c.read() >= mine, "own completed increments missing");
                    }
                });
            }
        });
        assert_eq!(c.read(), 4000);
    }
}
