//! The AAC counter from reads and writes only.
//!
//! A balanced binary tree with one leaf per process. Leaf `i` is a plain
//! single-writer register holding process `i`'s increment count; every
//! internal node is an [`AacMaxRegister`] holding the sum of its
//! subtree's leaves. `CounterIncrement` bumps the caller's leaf and, at
//! each node up the path, reads both children and `WriteMax`es their sum
//! into the node (sums only grow, so a max register can carry them).
//! `CounterRead` is a single `ReadMax` of the root.
//!
//! With max registers bounded by `M` (the restricted-use bound on total
//! increments), reads cost `O(log M)` and increments
//! `O(log N · log M)` — `O(log N)` and `O(log² N)` for polynomially many
//! increments, matching the step complexities quoted in the paper's
//! introduction. Theorem 2 shows the read side is optimal and forces
//! `Ω(log N)` increments, so the extra `log` factor on increments is the
//! price of renouncing CAS.

use std::fmt;
use std::sync::atomic::Ordering;

use ruo_sim::stepcount::CountingU64;
use ruo_sim::ProcessId;

use crate::maxreg::AacMaxRegister;
use crate::shape::TreeShape;
use crate::traits::{Counter, MaxRegister};

/// Restricted-use wait-free counter from reads and writes only:
/// `O(log M)` reads, `O(log N · log M)` increments, supporting at most
/// `max_increments` increments in total.
///
/// ```
/// use ruo_core::counter::AacCounter;
/// use ruo_core::Counter;
/// use ruo_sim::ProcessId;
///
/// let counter = AacCounter::new(4, 1_000);
/// counter.increment(ProcessId(2));
/// counter.increment(ProcessId(2));
/// assert_eq!(counter.read(), 2);
/// ```
pub struct AacCounter {
    shape: TreeShape,
    root: usize,
    leaves: Vec<usize>,
    /// Single-writer per-process counts, indexed by leaf node id.
    leaf_cells: Vec<CountingU64>,
    /// Internal-node max registers, indexed by node id (leaf slots are
    /// `None`).
    registers: Vec<Option<AacMaxRegister>>,
    max_increments: u64,
}

impl fmt::Debug for AacCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AacCounter")
            .field("n", &self.leaves.len())
            .field("max_increments", &self.max_increments)
            .finish()
    }
}

impl AacCounter {
    /// Creates a counter for `n` processes supporting at most
    /// `max_increments` increments in total (the restricted-use bound —
    /// the paper assumes this is polynomial in `N`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `max_increments == 0`.
    pub fn new(n: usize, max_increments: u64) -> Self {
        assert!(n >= 1, "at least one process required");
        assert!(max_increments >= 1, "bound must be positive");
        let mut shape = TreeShape::new();
        let (root, leaves) = shape.build_complete(n);
        shape.fix_depths(root);
        let leaf_cells = (0..shape.len()).map(|_| CountingU64::new(0)).collect();
        let registers = (0..shape.len())
            .map(|idx| {
                if shape.node(idx).is_leaf() {
                    None
                } else {
                    Some(AacMaxRegister::new(max_increments + 1))
                }
            })
            .collect();
        AacCounter {
            shape,
            root,
            leaves,
            leaf_cells,
            registers,
            max_increments,
        }
    }

    /// Number of processes sharing the counter.
    pub fn n(&self) -> usize {
        self.leaves.len()
    }

    /// The restricted-use bound on total increments.
    pub fn max_increments(&self) -> u64 {
        self.max_increments
    }

    /// Reads the value at node `idx`: the leaf cell for leaves, the max
    /// register for internal nodes.
    fn node_value(&self, idx: usize, pid: ProcessId) -> u64 {
        match &self.registers[idx] {
            Some(reg) => {
                let _ = pid;
                reg.read_max()
            }
            // SeqCst: sibling-leaf reads during sum propagation pair
            // with the SeqCst leaf store in `increment` (store-buffering
            // — DESIGN.md § Memory orderings).
            None => self.leaf_cells[idx].load(Ordering::SeqCst),
        }
    }
}

impl Counter for AacCounter {
    /// # Panics
    ///
    /// Panics if the restricted-use bound is exceeded (an internal
    /// `WriteMax` would overflow its register).
    fn increment(&self, pid: ProcessId) {
        let leaf = self.leaves[pid.index()];
        // Relaxed: the leaf is single-writer, so this load only reads the
        // caller's own last store. The store below stays SeqCst: a
        // concurrent incrementer publishes its leaf and then reads ours
        // via `node_value` — the store-buffering pattern that
        // Release/Acquire would not forbid (DESIGN.md § Memory
        // orderings).
        let c = self.leaf_cells[leaf].load(Ordering::Relaxed);
        self.leaf_cells[leaf].store(c + 1, Ordering::SeqCst);
        for node in self.shape.ancestors(leaf) {
            let info = self.shape.node(node);
            let l = info.left.map_or(0, |i| self.node_value(i, pid));
            let r = info.right.map_or(0, |i| self.node_value(i, pid));
            self.registers[node]
                .as_ref()
                .expect("ancestors are internal nodes")
                .write_max(pid, l + r);
        }
    }

    fn read(&self) -> u64 {
        self.node_value(self.root, ProcessId(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_counter_reads_zero() {
        assert_eq!(AacCounter::new(4, 100).read(), 0);
    }

    #[test]
    fn sequential_increments_count() {
        let c = AacCounter::new(3, 64);
        for i in 0..12usize {
            c.increment(ProcessId(i % 3));
            assert_eq!(c.read(), i as u64 + 1);
        }
    }

    #[test]
    fn single_process_counter_is_just_a_register() {
        let c = AacCounter::new(1, 8);
        c.increment(ProcessId(0));
        c.increment(ProcessId(0));
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn bound_is_enforced() {
        let c = AacCounter::new(2, 3);
        for _ in 0..3 {
            c.increment(ProcessId(0));
        }
        assert_eq!(c.read(), 3);
        let result = std::panic::catch_unwind(|| c.increment(ProcessId(0)));
        assert!(result.is_err(), "4th increment must exceed the bound");
    }

    #[test]
    fn concurrent_increments_are_all_counted() {
        let n = 4;
        let per = 250u64;
        let c = Arc::new(AacCounter::new(n, n as u64 * per));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        c.increment(ProcessId(i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.read(), n as u64 * per);
    }

    #[test]
    fn reads_are_monotone_under_concurrency() {
        let c = Arc::new(AacCounter::new(2, 4000));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let c = Arc::clone(&c);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = 0;
                while !stop.load(Ordering::Relaxed) {
                    let v = c.read();
                    assert!(v >= last, "count regressed from {last} to {v}");
                    last = v;
                }
            })
        };
        for _ in 0..2000 {
            c.increment(ProcessId(0));
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(c.read(), 2000);
    }
}
