//! Counter implementations.
//!
//! | Implementation | Primitives | `CounterRead` | `CounterIncrement` | Progress |
//! |---|---|---|---|---|
//! | [`FArrayCounter`] (Jayanti-style, CAS variant) | read/write/CAS | `O(1)` | `O(log N)` | wait-free |
//! | [`CombiningCounter`] (flat-combining front-end) | read/write/CAS | `O(1)` | `O(log N)` amortized per batch | blocking |
//! | [`ShardedCounter`] (per-process stripes) | read/write | `O(N)` | `O(1)` | wait-free |
//! | [`AacCounter`] | read/write | `O(log M)` | `O(log N · log M)` | wait-free, restricted use |
//! | [`FetchAddCounter`] | fetch-and-add | `O(1)` | `O(1)` | wait-free (stronger primitive) |
//! | [`ApproxCounter`] (k-accurate, HKM) | read/write | `O(N)`, within factor `k` | `O(1)`, publishes `O(log_k c)` times | wait-free |
//!
//! Theorem 1 of the paper says these tradeoffs are inherent for
//! read/write/CAS: reads in `O(f(N))` force increments to
//! `Ω(log(N / f(N)))`. The f-array counter sits at one end
//! (`f(N) = 1`, increments `Θ(log N)`), the AAC counter near the other
//! (`f(N) = Θ(log N)` for polynomially many increments); the fetch-add
//! baseline escapes the tradeoff only by using a stronger primitive than
//! the model allows. The [`CounterMode`] knob selects among the three
//! contended-write strategies built on the same leaf/stripe layout:
//! exact per-increment propagation, batched combining, or pure stripes.

mod aac;
mod approx;
mod combining;
mod farray;
mod fetch_add;
mod sharded;
pub mod sim;

pub use aac::AacCounter;
pub use approx::{ApproxCounter, SimApproxCounter};
pub use combining::CombiningCounter;
pub use farray::FArrayCounter;
pub use fetch_add::FetchAddCounter;
pub use sharded::ShardedCounter;

use crate::traits::Counter;

/// Constructor-level knob selecting the contended-write strategy of the
/// f-array-derived counters (ISSUE 6 / ROADMAP item 2).
///
/// | Mode | Read | Increment | Progress |
/// |---|---|---|---|
/// | [`Exact`](CounterMode::Exact) | `O(1)` | `O(log N)` | wait-free |
/// | [`Combining`](CounterMode::Combining) | `O(1)` | `O(log N)` per batch | blocking |
/// | [`Sharded`](CounterMode::Sharded) | `O(N)` | `O(1)` | wait-free |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CounterMode {
    /// Exact f-array: every increment runs its own propagation
    /// ([`FArrayCounter`]).
    Exact,
    /// Flat-combining front-end: one aggregated propagation per batch
    /// ([`CombiningCounter`]).
    Combining,
    /// Per-process stripes, no propagation; reads collect-sum
    /// ([`ShardedCounter`]).
    Sharded,
}

impl CounterMode {
    /// The schema name (`"exact"`, `"combining"`, `"sharded"`), as used
    /// in registry capability metadata and scenario tables.
    pub fn name(self) -> &'static str {
        match self {
            CounterMode::Exact => "exact",
            CounterMode::Combining => "combining",
            CounterMode::Sharded => "sharded",
        }
    }

    /// Parses a schema name; inverse of [`CounterMode::name`].
    pub fn parse(s: &str) -> Option<CounterMode> {
        match s {
            "exact" => Some(CounterMode::Exact),
            "combining" => Some(CounterMode::Combining),
            "sharded" => Some(CounterMode::Sharded),
            _ => None,
        }
    }

    /// All modes, in schema order.
    pub fn all() -> [CounterMode; 3] {
        [
            CounterMode::Exact,
            CounterMode::Combining,
            CounterMode::Sharded,
        ]
    }
}

impl std::fmt::Display for CounterMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a counter for `n` processes with the chosen contended-write
/// [`CounterMode`] — the constructor-level knob of ISSUE 6.
///
/// ```
/// use ruo_core::counter::{with_mode, CounterMode};
/// use ruo_sim::ProcessId;
///
/// let counter = with_mode(CounterMode::Sharded, 4);
/// counter.increment(ProcessId(2));
/// assert_eq!(counter.read(), 1);
/// ```
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_mode(mode: CounterMode, n: usize) -> Box<dyn Counter> {
    match mode {
        CounterMode::Exact => Box::new(FArrayCounter::new(n)),
        CounterMode::Combining => Box::new(CombiningCounter::new(n)),
        CounterMode::Sharded => Box::new(ShardedCounter::new(n)),
    }
}

#[cfg(test)]
mod mode_tests {
    use super::*;
    use ruo_sim::ProcessId;

    #[test]
    fn names_round_trip() {
        for mode in CounterMode::all() {
            assert_eq!(CounterMode::parse(mode.name()), Some(mode));
            assert_eq!(format!("{mode}"), mode.name());
        }
        assert_eq!(CounterMode::parse("nope"), None);
    }

    #[test]
    fn every_mode_builds_a_working_counter() {
        for mode in CounterMode::all() {
            let c = with_mode(mode, 3);
            c.increment(ProcessId(0));
            c.increment(ProcessId(2));
            assert_eq!(c.read(), 2, "mode {mode}");
        }
    }
}
