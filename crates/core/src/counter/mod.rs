//! Counter implementations.
//!
//! | Implementation | Primitives | `CounterRead` | `CounterIncrement` | Progress |
//! |---|---|---|---|---|
//! | [`FArrayCounter`] (Jayanti-style, CAS variant) | read/write/CAS | `O(1)` | `O(log N)` | wait-free |
//! | [`AacCounter`] | read/write | `O(log M)` | `O(log N · log M)` | wait-free, restricted use |
//! | [`FetchAddCounter`] | fetch-and-add | `O(1)` | `O(1)` | wait-free (stronger primitive) |
//!
//! Theorem 1 of the paper says these tradeoffs are inherent for
//! read/write/CAS: reads in `O(f(N))` force increments to
//! `Ω(log(N / f(N)))`. The f-array counter sits at one end
//! (`f(N) = 1`, increments `Θ(log N)`), the AAC counter near the other
//! (`f(N) = Θ(log N)` for polynomially many increments); the fetch-add
//! baseline escapes the tradeoff only by using a stronger primitive than
//! the model allows.

mod aac;
mod farray;
mod fetch_add;
pub mod sim;

pub use aac::AacCounter;
pub use farray::FArrayCounter;
pub use fetch_add::FetchAddCounter;
