//! k-multiplicative-accurate counter (Hendler–Khattabi–Milani,
//! arXiv 2104.09902).
//!
//! The source paper's Theorem 1 tradeoff is for *exact* counters: cheap
//! reads force `Ω(log N)` increments. HKM escape it by relaxing the
//! read's contract to **k-multiplicative accuracy**: a `CounterRead`
//! returning `v` guarantees `C / k ≤ v ≤ C` for the true count `C` —
//! never an overestimate, and an underestimate by at most the factor
//! `k`.
//!
//! The construction here is the stripe-publication variant: process `i`
//! keeps an *exact* private count `c_i` and a *published* stripe `p_i`,
//! and re-publishes (`p_i ← c_i`) only when the published value has
//! drifted by more than the allowed factor (`p_i · k < c_i`). The
//! per-process invariant after every completed increment is therefore
//!
//! ```text
//! p_i ≤ c_i ≤ k · p_i
//! ```
//!
//! so a read that collect-sums the published stripes returns
//! `v = Σ p_i` with `v ≤ C ≤ k · v`. Only `O(log_k c_i)` of a process's
//! increments touch its shared stripe — the sublogarithmic-update side
//! of the HKM tradeoff shows up as vanishing cross-core publication
//! (and, in the sim face, as increments that complete without a single
//! contended write).
//!
//! At `k = 1` the publication condition is always true, every increment
//! publishes, and the object *is* the exact
//! [`ShardedCounter`](crate::counter::ShardedCounter) bit for bit.

use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use ruo_sim::stepcount::CountingU64;
use ruo_sim::{done, read, write, Machine, Memory, ObjId, ProcessId, Step, Word};

use super::sim::SimCounter;
use crate::pad::CachePadded;
use crate::traits::Counter;

/// Whether a published stripe `p` has drifted too far behind the exact
/// local count `c` under accuracy factor `k` — the single publication
/// rule both faces share (`u128` so `p · k` cannot overflow).
#[inline]
fn must_publish(p: u64, c: u64, k: u64) -> bool {
    (p as u128) * (k as u128) < c as u128
}

/// k-multiplicative-accurate counter: `O(1)` wait-free increments that
/// publish to the shared stripe only `O(log_k c)` times, `O(N)`
/// collect-sum reads whose answer `v` satisfies `v ≤ C ≤ k·v`.
///
/// ```
/// use ruo_core::counter::ApproxCounter;
/// use ruo_core::Counter;
/// use ruo_sim::ProcessId;
///
/// let counter = ApproxCounter::new(2, 2); // 2 processes, k = 2
/// for _ in 0..10 {
///     counter.increment(ProcessId(0));
/// }
/// let v = counter.read();
/// assert!(v <= 10 && 2 * v >= 10);
/// assert_eq!(counter.exact(), 10);
/// ```
pub struct ApproxCounter {
    /// Exact per-process counts; stripe `i` is written only by `i`.
    local: Box<[CachePadded<CountingU64>]>,
    /// Published stripes — the only cells reads touch.
    published: Box<[CachePadded<CountingU64>]>,
    k: u64,
}

impl fmt::Debug for ApproxCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ApproxCounter")
            .field("n", &self.n())
            .field("k", &self.k)
            .field("approx", &self.read())
            .field("exact", &self.exact())
            .finish()
    }
}

impl ApproxCounter {
    /// Creates a counter shared by `n` processes with accuracy factor
    /// `k`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    pub fn new(n: usize, k: u64) -> Self {
        assert!(n >= 1, "at least one process required");
        assert!(k >= 1, "accuracy factor k must be >= 1");
        let stripe = |_| CachePadded::new(CountingU64::new(0));
        ApproxCounter {
            local: (0..n).map(stripe).collect(),
            published: (0..n).map(stripe).collect(),
            k,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.local.len()
    }

    /// The accuracy factor.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// The exact count (sum of the private stripes) — an `O(N)` collect
    /// used by audits and tests, *not* part of the approximate read
    /// path.
    pub fn exact(&self) -> u64 {
        self.local.iter().map(|s| s.load(Ordering::SeqCst)).sum()
    }

    /// Published stripe `i` (for tests and gauges).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn published(&self, i: usize) -> u64 {
        self.published[i].load(Ordering::Acquire)
    }
}

impl Counter for ApproxCounter {
    fn increment(&self, pid: ProcessId) {
        let i = pid.index();
        // Single-writer stripes: Relaxed reads of our own last stores,
        // SeqCst publication (same discipline as the sharded counter).
        let c = self.local[i].load(Ordering::Relaxed) + 1;
        self.local[i].store(c, Ordering::SeqCst);
        let p = self.published[i].load(Ordering::Relaxed);
        if must_publish(p, c, self.k) {
            self.published[i].store(c, Ordering::SeqCst);
        }
    }

    /// One collect of the published stripes; the result `v` satisfies
    /// `v ≤ C ≤ k·v` for the true count `C` (module docs).
    fn read(&self) -> u64 {
        self.published
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .sum()
    }
}

/// The k-accurate counter as step machines: `CounterIncrement` is 3
/// steps unpublished, 4 published (vs. the sharded counter's 2 — the
/// price of keeping the exact count private); `CounterRead` collect-sums
/// the `N` published stripes in a single pass.
#[derive(Debug)]
pub struct SimApproxCounter {
    local: Arc<Vec<ObjId>>,
    published: Arc<Vec<ObjId>>,
    k: u64,
}

impl SimApproxCounter {
    /// Allocates `2n` zeroed cells in `mem` for accuracy factor `k`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    pub fn new(mem: &mut Memory, n: usize, k: u64) -> Self {
        assert!(n >= 1, "at least one process required");
        assert!(k >= 1, "accuracy factor k must be >= 1");
        SimApproxCounter {
            local: Arc::new(mem.alloc_n(n, 0)),
            published: Arc::new(mem.alloc_n(n, 0)),
            k,
        }
    }

    /// The accuracy factor.
    pub fn k(&self) -> u64 {
        self.k
    }
}

/// Reads `cells[i..]` one step at a time, accumulating the sum.
fn collect(cells: Arc<Vec<ObjId>>, i: usize, acc: Word) -> Step {
    if i == cells.len() {
        return done(acc);
    }
    let cell = cells[i];
    read(cell, move |w| collect(cells, i + 1, acc + w))
}

impl SimCounter for SimApproxCounter {
    fn n(&self) -> usize {
        self.local.len()
    }

    fn increment(&self, pid: ProcessId) -> Machine {
        let local = self.local[pid.index()];
        let published = self.published[pid.index()];
        let k = self.k;
        // Local bump first, publication second: a crash between the two
        // leaves a pending increment whose effect surfaces at the
        // process's next publication — the interval checkers treat the
        // pending op as free to linearize either way.
        Machine::new(read(local, move |c| {
            write(local, c + 1, move || {
                read(published, move |p| {
                    if must_publish(p as u64, (c + 1) as u64, k) {
                        write(published, c + 1, || done(0))
                    } else {
                        done(0)
                    }
                })
            })
        }))
    }

    fn read(&self, _pid: ProcessId) -> Machine {
        Machine::new(collect(Arc::clone(&self.published), 0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn fresh_counter_reads_zero() {
        let c = ApproxCounter::new(4, 3);
        assert_eq!(c.read(), 0);
        assert_eq!(c.exact(), 0);
    }

    #[test]
    fn k1_is_exact() {
        let c = ApproxCounter::new(3, 1);
        for i in 0..30usize {
            c.increment(ProcessId(i % 3));
            assert_eq!(c.read(), i as u64 + 1, "k=1 must publish every bump");
        }
    }

    #[test]
    fn envelope_holds_at_every_prefix() {
        for k in [2u64, 3, 10] {
            let c = ApproxCounter::new(2, k);
            for i in 0..200usize {
                c.increment(ProcessId(i % 2));
                let exact = i as u64 + 1;
                let v = c.read();
                assert!(v <= exact, "overestimate at k={k}: {v} > {exact}");
                assert!(
                    (v as u128) * (k as u128) >= exact as u128,
                    "drift past k={k}: {v} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn publications_are_logarithmic() {
        // 1000 solo increments at k=2 publish only when p*2 < c:
        // p follows 1, 2, 3, 5, 9, 17, ... — O(log_2 c) publications.
        let c = ApproxCounter::new(1, 2);
        let mut publications = 0;
        let mut last = c.published(0);
        for _ in 0..1000 {
            c.increment(ProcessId(0));
            let p = c.published(0);
            if p != last {
                publications += 1;
                last = p;
            }
        }
        assert!(
            publications <= 16,
            "k=2 published {publications} times in 1000 increments"
        );
        assert!(c.read() >= 500);
    }

    #[test]
    fn concurrent_increments_stay_in_envelope() {
        let n = 4;
        let per = 5000u64;
        let k = 3u64;
        let c = StdArc::new(ApproxCounter::new(n, k));
        std::thread::scope(|s| {
            for i in 0..n {
                let c = StdArc::clone(&c);
                s.spawn(move || {
                    for _ in 0..per {
                        c.increment(ProcessId(i));
                    }
                });
            }
        });
        let total = n as u64 * per;
        assert_eq!(c.exact(), total);
        let v = c.read();
        assert!(v <= total && v * k >= total, "v={v} total={total}");
    }

    fn run_solo(mem: &mut Memory, m: Machine) -> (Word, usize) {
        let mut m = m;
        while let Some(prim) = m.enabled() {
            let resp = mem.apply(ProcessId(0), prim);
            m.feed(resp);
        }
        (m.result().expect("completed"), m.steps())
    }

    #[test]
    fn sim_face_matches_real_semantics() {
        let mut mem = Memory::new();
        let c = SimApproxCounter::new(&mut mem, 2, 2);
        let mut exact = 0u64;
        for i in 0..40usize {
            run_solo(&mut mem, c.increment(ProcessId(i % 2)));
            exact += 1;
            let (v, steps) = run_solo(&mut mem, c.read(ProcessId(0)));
            assert_eq!(steps, 2, "read collects one pass over published");
            let v = v as u64;
            assert!(v <= exact && v * 2 >= exact, "v={v} exact={exact}");
        }
    }

    #[test]
    fn sim_k1_increment_always_publishes() {
        let mut mem = Memory::new();
        let c = SimApproxCounter::new(&mut mem, 1, 1);
        for i in 0..5u64 {
            let (_, steps) = run_solo(&mut mem, c.increment(ProcessId(0)));
            assert_eq!(steps, 4, "k=1 publishes on every increment");
            let (v, _) = run_solo(&mut mem, c.read(ProcessId(0)));
            assert_eq!(v as u64, i + 1);
        }
    }

    #[test]
    fn sim_unpublished_increment_is_three_steps() {
        let mut mem = Memory::new();
        let c = SimApproxCounter::new(&mut mem, 1, 4);
        let (_, first) = run_solo(&mut mem, c.increment(ProcessId(0)));
        assert_eq!(first, 4, "first increment publishes (0*k < 1)");
        let (_, second) = run_solo(&mut mem, c.increment(ProcessId(0)));
        assert_eq!(second, 3, "second stays private (1*4 >= 2)");
    }
}
