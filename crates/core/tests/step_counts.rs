//! Step-count regression tests: the *exact* solo step counts of every
//! simulated operation, pinned across sizes. Any change to an algorithm
//! that alters its complexity class — or even its constant — fails here
//! loudly, with the measured-vs-pinned numbers in the assertion.

use ruo_core::counter::sim::{
    SimAacCounter, SimCasLoopCounter, SimCounter, SimFArrayCounter, SimSnapshotCounter,
};
use ruo_core::farray::{Max, Sum};
use ruo_core::farray_sim::SimFArray;
use ruo_core::maxreg::sim::{
    SimAacMaxRegister, SimCasRetryMaxRegister, SimMaxRegister, SimTreeMaxRegister,
};
use ruo_core::snapshot::sim::{SimDoubleCollectSnapshot, SimSnapshot};
use ruo_sim::{Machine, Memory, ProcessId};

fn steps(mem: &mut Memory, pid: ProcessId, mut m: Machine) -> usize {
    while let Some(prim) = m.enabled() {
        let resp = mem.apply(pid, prim);
        m.feed(resp);
    }
    m.steps()
}

#[test]
fn tree_maxreg_read_is_one_step_at_every_size() {
    for n in [1usize, 2, 7, 64, 1000] {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, n);
        assert_eq!(steps(&mut mem, ProcessId(0), reg.read_max(ProcessId(0))), 1);
    }
}

#[test]
fn tree_maxreg_write_steps_are_pinned() {
    // write = 2 leaf events + 8 per ancestor level.
    let cases = [
        // (n, v, expected steps)
        (2usize, 1u64, 2 + 8),       // TL single leaf at depth 1
        (2, 2, 2 + 8 * 2),           // TR leaf at depth 2
        (4, 1, 2 + 8 * 2),           // TL leaf (B1 spine) at depth 2
        (4, 100, 2 + 8 * 3),         // TR leaf at depth 3
        (1024, 1 << 40, 2 + 8 * 11), // TR leaf at depth 11
    ];
    for (n, v, expected) in cases {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, n);
        let got = steps(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), v));
        assert_eq!(got, expected, "n={n} v={v}");
    }
}

#[test]
fn aac_maxreg_steps_equal_tree_depth() {
    for log_m in [1u32, 4, 10] {
        let m = 1u64 << log_m;
        let mut mem = Memory::new();
        let reg = SimAacMaxRegister::new(&mut mem, 2, m);
        let w = steps(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), m - 1));
        let r = steps(&mut mem, ProcessId(1), reg.read_max(ProcessId(1)));
        assert_eq!(w, log_m as usize, "write M=2^{log_m}");
        assert_eq!(r, log_m as usize, "read M=2^{log_m}");
    }
}

#[test]
fn unbalanced_aac_value_costs_are_pinned() {
    let m = 1u64 << 16;
    // (value, expected steps) — 2·log2(v+1)+1 shape on the B1 spine.
    let cases = [(0u64, 1usize), (1, 3), (3, 5), (15, 9), (255, 17)];
    for (v, expected) in cases {
        let mut mem = Memory::new();
        let reg = SimAacMaxRegister::new_unbalanced(&mut mem, 2, m);
        let got = steps(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), v));
        assert_eq!(got, expected, "v={v}");
    }
}

#[test]
fn cas_retry_maxreg_solo_costs() {
    let mut mem = Memory::new();
    let reg = SimCasRetryMaxRegister::new(&mut mem, 2);
    assert_eq!(
        steps(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), 5)),
        2
    );
    assert_eq!(steps(&mut mem, ProcessId(1), reg.read_max(ProcessId(1))), 1);
    // Dominated write: one read, no CAS.
    assert_eq!(
        steps(&mut mem, ProcessId(0), reg.write_max(ProcessId(0), 3)),
        1
    );
}

#[test]
fn farray_counter_steps_are_pinned() {
    // increment = 2 leaf events + 8 per level; read = 1.
    let cases = [(1usize, 2usize), (2, 2 + 8), (4, 2 + 16), (64, 2 + 48)];
    for (n, expected) in cases {
        let mut mem = Memory::new();
        let c = SimFArrayCounter::new(&mut mem, n);
        assert_eq!(
            steps(&mut mem, ProcessId(0), c.increment(ProcessId(0))),
            expected,
            "n={n}"
        );
        assert_eq!(steps(&mut mem, ProcessId(0), c.read(ProcessId(0))), 1);
    }
}

#[test]
fn aac_counter_read_is_reg_depth() {
    for (m, expected_read) in [(7u64, 3usize), (15, 4), (1023, 10)] {
        let mut mem = Memory::new();
        let c = SimAacCounter::new(&mut mem, 4, m);
        // Register capacity is m+1; depth = ceil(log2(m+1)).
        assert_eq!(
            steps(&mut mem, ProcessId(0), c.read(ProcessId(0))),
            expected_read,
            "m={m}"
        );
    }
}

#[test]
fn snapshot_counter_costs_are_pinned() {
    for n in [1usize, 4, 16] {
        let mut mem = Memory::new();
        let c = SimSnapshotCounter::new(&mut mem, n);
        assert_eq!(steps(&mut mem, ProcessId(0), c.increment(ProcessId(0))), 2);
        assert_eq!(
            steps(&mut mem, ProcessId(0), c.read(ProcessId(0))),
            2 * n,
            "solo read is one clean double collect"
        );
    }
}

#[test]
fn cas_loop_counter_solo_costs() {
    let mut mem = Memory::new();
    let c = SimCasLoopCounter::new(&mut mem, 2);
    assert_eq!(steps(&mut mem, ProcessId(0), c.increment(ProcessId(0))), 2);
    assert_eq!(steps(&mut mem, ProcessId(0), c.read(ProcessId(0))), 1);
}

#[test]
fn double_collect_snapshot_costs_are_pinned() {
    for n in [1usize, 3, 8] {
        let mut mem = Memory::new();
        let s = SimDoubleCollectSnapshot::new(&mut mem, n);
        assert_eq!(steps(&mut mem, ProcessId(0), s.update(ProcessId(0), 1)), 2);
        let sc = steps(&mut mem, ProcessId(0), s.scan(ProcessId(0)));
        assert_eq!(sc, 2 * n, "n={n}");
    }
}

#[test]
fn generic_farray_costs_match_counter() {
    for n in [2usize, 8, 32] {
        let mut mem = Memory::new();
        let sum = SimFArray::<Sum>::new(&mut mem, n);
        let max = SimFArray::<Max>::new(&mut mem, n);
        let levels = (n as f64).log2().ceil() as usize;
        assert_eq!(
            steps(&mut mem, ProcessId(0), sum.update(ProcessId(0), 1)),
            2 + 8 * levels,
            "sum n={n}"
        );
        assert_eq!(
            steps(&mut mem, ProcessId(0), max.update(ProcessId(0), 1)),
            2 + 8 * levels,
            "max n={n}"
        );
        assert_eq!(steps(&mut mem, ProcessId(0), sum.read()), 1);
    }
}
