//! Marker-trait guarantees (C-SEND-SYNC): every shared object must be
//! usable across threads, and the guarantees must not regress silently
//! when internals change (several types manage raw pointers by hand).

use ruo_core::counter::{AacCounter, FArrayCounter, FetchAddCounter};
use ruo_core::farray::{FArray, Max, Min, Sum};
use ruo_core::maxreg::{AacMaxRegister, CasRetryMaxRegister, LockMaxRegister, TreeMaxRegister};
use ruo_core::reduction::CounterFromSnapshot;
use ruo_core::snapshot::{AfekSnapshot, DoubleCollectSnapshot, PathCopySnapshot, SnapshotView};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn max_registers_are_send_and_sync() {
    assert_send_sync::<TreeMaxRegister>();
    assert_send_sync::<AacMaxRegister>();
    assert_send_sync::<CasRetryMaxRegister>();
    assert_send_sync::<LockMaxRegister>();
}

#[test]
fn counters_are_send_and_sync() {
    assert_send_sync::<FArrayCounter>();
    assert_send_sync::<AacCounter>();
    assert_send_sync::<FetchAddCounter>();
    assert_send_sync::<CounterFromSnapshot<DoubleCollectSnapshot>>();
}

#[test]
fn snapshots_are_send_and_sync() {
    assert_send_sync::<DoubleCollectSnapshot>();
    assert_send_sync::<AfekSnapshot>();
    assert_send_sync::<PathCopySnapshot>();
    assert_send_sync::<SnapshotView<'static>>();
}

#[test]
fn farrays_are_send_and_sync() {
    assert_send_sync::<FArray<Sum>>();
    assert_send_sync::<FArray<Max>>();
    assert_send_sync::<FArray<Min>>();
}

#[test]
fn trait_objects_are_shareable() {
    assert_send_sync::<Box<dyn ruo_core::MaxRegister>>();
    assert_send_sync::<Box<dyn ruo_core::Counter>>();
    assert_send_sync::<Box<dyn ruo_core::Snapshot>>();
}
