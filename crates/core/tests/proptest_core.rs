//! Property tests for the core objects: structural bounds of the tree
//! shapes, sequential-specification conformance of every implementation
//! on arbitrary operation streams, and schedule-independence of the
//! simulated algorithms.
//!
//! The workspace builds offline with no external dependencies, so these
//! are deterministic randomized property tests driven by the local
//! [`ruo_sim::SplitMix64`] generator rather than `proptest`: each test
//! runs a fixed number of seeded cases, and a failure message always
//! includes the case number so the exact input can be regenerated.

use ruo_core::b1tree::depth_bound;
use ruo_core::counter::{AacCounter, FArrayCounter, FetchAddCounter};
use ruo_core::farray::{FArray, Max, Min, Sum};
use ruo_core::maxreg::sim::{SimAacMaxRegister, SimMaxRegister, SimTreeMaxRegister};
use ruo_core::maxreg::{AacMaxRegister, CasRetryMaxRegister, TreeMaxRegister};
use ruo_core::shape::AlgorithmATree;
use ruo_core::snapshot::{AfekSnapshot, DoubleCollectSnapshot, PathCopySnapshot};
use ruo_core::{Counter, MaxRegister, Snapshot};
use ruo_sim::{Machine, Memory, ProcessId, SplitMix64};

/// Result-only wrapper over the shared [`ruo_sim::run_solo`] driver.
fn run_solo(mem: &mut Memory, pid: ProcessId, m: Machine) -> i64 {
    ruo_sim::run_solo(mem, pid, m).0
}

/// Every leaf of Algorithm A's tree respects the Bentley–Yao depth
/// bound (value leaves) or the complete-tree bound (process leaves),
/// for arbitrary process counts.
#[test]
fn algorithm_a_tree_depth_bounds() {
    let mut rng = SplitMix64::new(0x51ee7);
    for case in 0..128 {
        let n = 1 + rng.gen_index(599);
        let tree = AlgorithmATree::new(n);
        for v in 1..n as u64 {
            let d = tree.write_depth(0, v);
            assert!(
                d <= depth_bound(v as usize) + 1,
                "case {case} (n={n}): value leaf {v}: depth {d} > B1 bound + root edge"
            );
        }
        let complete_bound = (n as f64).log2().ceil() as usize + 2;
        for p in 0..n {
            let d = tree.write_depth(p, n as u64 + 1);
            assert!(
                d <= complete_bound,
                "case {case} (n={n}): process leaf {p}: {d} > {complete_bound}"
            );
        }
    }
}

/// Max registers conform to the sequential spec on arbitrary
/// write/read streams (real and simulated implementations).
#[test]
fn max_registers_follow_the_spec() {
    let mut rng = SplitMix64::new(0x20140a);
    for case in 0..128 {
        let n = 4;
        let cap = 256;
        let tree = TreeMaxRegister::new(n);
        let aac = AacMaxRegister::new(cap);
        let cas = CasRetryMaxRegister::new();
        let mut mem = Memory::new();
        let sim_tree = SimTreeMaxRegister::new(&mut mem, n);
        let sim_aac = SimAacMaxRegister::new(&mut mem, n, cap);
        let mut expected = 0u64;
        let ops = 1 + rng.gen_index(39);
        for _ in 0..ops {
            let is_write = rng.gen_bool(0.5);
            let v = rng.gen_below(256);
            let pid = ProcessId(rng.gen_index(4));
            if is_write {
                expected = expected.max(v);
                tree.write_max(pid, v);
                aac.write_max(pid, v);
                cas.write_max(pid, v);
                run_solo(&mut mem, pid, sim_tree.write_max(pid, v));
                run_solo(&mut mem, pid, sim_aac.write_max(pid, v));
            } else {
                assert_eq!(tree.read_max(), expected, "case {case}: tree");
                assert_eq!(aac.read_max(), expected, "case {case}: aac");
                assert_eq!(cas.read_max(), expected, "case {case}: cas");
                assert_eq!(
                    run_solo(&mut mem, pid, sim_tree.read_max(pid)) as u64,
                    expected,
                    "case {case}: sim tree"
                );
                assert_eq!(
                    run_solo(&mut mem, pid, sim_aac.read_max(pid)) as u64,
                    expected,
                    "case {case}: sim aac"
                );
            }
        }
    }
}

/// The simulated Algorithm A converges to the true maximum under
/// randomly chosen interleavings of concurrent writers, and
/// intermediate roots never exceed it.
#[test]
fn sim_tree_register_is_schedule_independent() {
    let mut rng = SplitMix64::new(0xdead1e);
    for case in 0..128 {
        let n = 2 + rng.gen_index(3);
        let values: Vec<u64> = (0..n).map(|_| 1 + rng.gen_below(9_999)).collect();
        let schedule_len = rng.gen_index(200);
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, n);
        let mut machines: Vec<(ProcessId, Machine)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (ProcessId(i), reg.write_max(ProcessId(i), v)))
            .collect();
        let max = *values.iter().max().unwrap();
        // Drive with a random schedule, then drain round-robin.
        for _ in 0..schedule_len {
            let alive: Vec<usize> = machines
                .iter()
                .enumerate()
                .filter(|(_, (_, m))| !m.is_done())
                .map(|(i, _)| i)
                .collect();
            if alive.is_empty() {
                break;
            }
            let idx = alive[rng.gen_index(alive.len())];
            let (pid, m) = &mut machines[idx];
            let prim = m.enabled().unwrap();
            let resp = mem.apply(*pid, prim);
            m.feed(resp);
            let root = run_solo(&mut mem, ProcessId(0), reg.read_max(ProcessId(0))) as u64;
            assert!(
                root <= max,
                "case {case}: root {root} exceeds any written value"
            );
        }
        for (pid, m) in machines.iter_mut() {
            while let Some(prim) = m.enabled() {
                let resp = mem.apply(*pid, prim);
                m.feed(resp);
            }
        }
        let root = run_solo(&mut mem, ProcessId(0), reg.read_max(ProcessId(0))) as u64;
        assert_eq!(root, max, "case {case}: quiescent root must be the maximum");
    }
}

/// Counters conform to the spec on arbitrary increment/read streams.
#[test]
fn counters_follow_the_spec() {
    let mut rng = SplitMix64::new(0xc0417e5);
    for case in 0..128 {
        let n = 4;
        let farray = FArrayCounter::new(n);
        let aac = AacCounter::new(n, 64);
        let fa = FetchAddCounter::new();
        let mut expected = 0u64;
        let ops = 1 + rng.gen_index(49);
        for _ in 0..ops {
            let pid = ProcessId(rng.gen_index(4));
            if rng.gen_bool(0.5) && expected < 64 {
                expected += 1;
                farray.increment(pid);
                aac.increment(pid);
                fa.increment(pid);
            } else {
                assert_eq!(farray.read(), expected, "case {case}: farray");
                assert_eq!(aac.read(), expected, "case {case}: aac");
                assert_eq!(fa.read(), expected, "case {case}: fetch-add");
            }
        }
    }
}

/// Snapshots conform to the spec on arbitrary update/scan streams.
#[test]
fn snapshots_follow_the_spec() {
    let mut rng = SplitMix64::new(0x54a9);
    for case in 0..128 {
        let n = 4;
        let dc = DoubleCollectSnapshot::new(n);
        let afek = AfekSnapshot::new(n);
        let pc = PathCopySnapshot::new(n, 64);
        let mut expected = vec![0u64; n];
        let ops = 1 + rng.gen_index(49);
        for _ in 0..ops {
            let p = rng.gen_index(4);
            let pid = ProcessId(p);
            let v = rng.gen_below(1_000_000);
            if rng.gen_bool(0.5) {
                expected[p] = v;
                dc.update(pid, v);
                afek.update(pid, v);
                pc.update(pid, v);
            } else {
                assert_eq!(dc.scan(), expected, "case {case}: double collect");
                assert_eq!(afek.scan(), expected, "case {case}: afek");
                assert_eq!(pc.scan(), expected, "case {case}: path copy");
            }
        }
    }
}

/// The generic f-array maintains exactly the aggregate of its slots
/// under arbitrary monotone update streams, for all three aggregations.
#[test]
fn farray_aggregates_exactly() {
    let mut rng = SplitMix64::new(0xfa_aa44);
    for case in 0..128 {
        let n = 4;
        let sum = FArray::<Sum>::new(n);
        let max = FArray::<Max>::new(n);
        let min = FArray::<Min>::new(n);
        let mut slots_sum = vec![0i64; n];
        let mut slots_max = vec![i64::MIN; n];
        let mut slots_min = vec![i64::MAX; n];
        let deltas = 1 + rng.gen_index(39);
        for _ in 0..deltas {
            let p = rng.gen_index(4);
            let d = 1 + rng.gen_below(99) as i64;
            let pid = ProcessId(p);
            slots_sum[p] += d;
            sum.update(pid, slots_sum[p]);
            slots_max[p] = if slots_max[p] == i64::MIN {
                d
            } else {
                slots_max[p] + d
            };
            max.update(pid, slots_max[p]);
            slots_min[p] = if slots_min[p] == i64::MAX {
                -d
            } else {
                slots_min[p] - d
            };
            min.update(pid, slots_min[p]);
            assert_eq!(sum.read(), slots_sum.iter().sum::<i64>(), "case {case}");
            assert_eq!(max.read(), *slots_max.iter().max().unwrap(), "case {case}");
            assert_eq!(min.read(), *slots_min.iter().min().unwrap(), "case {case}");
        }
    }
}

/// AAC register: any single value round-trips at any capacity.
#[test]
fn aac_round_trips_at_any_capacity() {
    let mut rng = SplitMix64::new(0xaac);
    for case in 0..128 {
        let cap = 1 + rng.gen_below(1_999);
        let v = rng.gen_below(cap);
        let reg = AacMaxRegister::new(cap);
        reg.write_max(ProcessId(0), v);
        assert_eq!(reg.read_max(), v, "case {case}: cap={cap} v={v}");
    }
}
