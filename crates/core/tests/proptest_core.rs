//! Property tests for the core objects: structural bounds of the tree
//! shapes, sequential-specification conformance of every implementation
//! on arbitrary operation streams, and schedule-independence of the
//! simulated algorithms.

use proptest::prelude::*;
use ruo_core::b1tree::depth_bound;
use ruo_core::counter::{AacCounter, FArrayCounter, FetchAddCounter};
use ruo_core::farray::{FArray, Max, Min, Sum};
use ruo_core::maxreg::sim::{SimAacMaxRegister, SimMaxRegister, SimTreeMaxRegister};
use ruo_core::maxreg::{AacMaxRegister, CasRetryMaxRegister, TreeMaxRegister};
use ruo_core::shape::AlgorithmATree;
use ruo_core::snapshot::{AfekSnapshot, DoubleCollectSnapshot, PathCopySnapshot};
use ruo_core::{Counter, MaxRegister, Snapshot};
use ruo_sim::{Machine, Memory, ProcessId};

fn run_solo(mem: &mut Memory, pid: ProcessId, mut m: Machine) -> i64 {
    while let Some(prim) = m.enabled() {
        let resp = mem.apply(pid, prim);
        m.feed(resp);
    }
    m.result().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every leaf of Algorithm A's tree respects the Bentley–Yao depth
    /// bound (value leaves) or the complete-tree bound (process leaves),
    /// for arbitrary process counts.
    #[test]
    fn algorithm_a_tree_depth_bounds(n in 1usize..600) {
        let tree = AlgorithmATree::new(n);
        for v in 1..n as u64 {
            let d = tree.write_depth(0, v);
            prop_assert!(
                d <= depth_bound(v as usize) + 1,
                "value leaf {v}: depth {d} > B1 bound + root edge"
            );
        }
        let complete_bound = (n as f64).log2().ceil() as usize + 2;
        for p in 0..n {
            let d = tree.write_depth(p, n as u64 + 1);
            prop_assert!(d <= complete_bound, "process leaf {p}: {d} > {complete_bound}");
        }
    }

    /// Max registers conform to the sequential spec on arbitrary
    /// write/read streams (real and simulated implementations).
    #[test]
    fn max_registers_follow_the_spec(
        ops in proptest::collection::vec((any::<bool>(), 0u64..256, 0usize..4), 1..40)
    ) {
        let n = 4;
        let cap = 256;
        let tree = TreeMaxRegister::new(n);
        let aac = AacMaxRegister::new(cap);
        let cas = CasRetryMaxRegister::new();
        let mut mem = Memory::new();
        let sim_tree = SimTreeMaxRegister::new(&mut mem, n);
        let sim_aac = SimAacMaxRegister::new(&mut mem, n, cap);
        let mut expected = 0u64;
        for (is_write, v, p) in ops {
            let pid = ProcessId(p);
            if is_write {
                expected = expected.max(v);
                tree.write_max(pid, v);
                aac.write_max(pid, v);
                cas.write_max(pid, v);
                run_solo(&mut mem, pid, sim_tree.write_max(pid, v));
                run_solo(&mut mem, pid, sim_aac.write_max(pid, v));
            } else {
                prop_assert_eq!(tree.read_max(), expected);
                prop_assert_eq!(aac.read_max(), expected);
                prop_assert_eq!(cas.read_max(), expected);
                prop_assert_eq!(run_solo(&mut mem, pid, sim_tree.read_max(pid)) as u64, expected);
                prop_assert_eq!(run_solo(&mut mem, pid, sim_aac.read_max(pid)) as u64, expected);
            }
        }
    }

    /// The simulated Algorithm A converges to the true maximum under
    /// EVERY interleaving of concurrent writers (schedule chosen by
    /// proptest), and intermediate roots never exceed it.
    #[test]
    fn sim_tree_register_is_schedule_independent(
        values in proptest::collection::vec(1u64..10_000, 2..5),
        schedule in proptest::collection::vec(0usize..5, 0..200),
    ) {
        let n = values.len();
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, n);
        let mut machines: Vec<(ProcessId, Machine)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (ProcessId(i), reg.write_max(ProcessId(i), v)))
            .collect();
        let max = *values.iter().max().unwrap();
        // Drive with the proptest-chosen schedule, then drain round-robin.
        for pick in schedule {
            let alive: Vec<usize> = machines
                .iter()
                .enumerate()
                .filter(|(_, (_, m))| !m.is_done())
                .map(|(i, _)| i)
                .collect();
            if alive.is_empty() {
                break;
            }
            let idx = alive[pick % alive.len()];
            let (pid, m) = &mut machines[idx];
            let prim = m.enabled().unwrap();
            let resp = mem.apply(*pid, prim);
            m.feed(resp);
            let root = run_solo(&mut mem, ProcessId(0), reg.read_max(ProcessId(0))) as u64;
            prop_assert!(root <= max, "root {root} exceeds any written value");
        }
        for (pid, m) in machines.iter_mut() {
            while let Some(prim) = m.enabled() {
                let resp = mem.apply(*pid, prim);
                m.feed(resp);
            }
        }
        let root = run_solo(&mut mem, ProcessId(0), reg.read_max(ProcessId(0))) as u64;
        prop_assert_eq!(root, max, "quiescent root must be the maximum");
    }

    /// Counters conform to the spec on arbitrary increment/read streams.
    #[test]
    fn counters_follow_the_spec(
        ops in proptest::collection::vec((any::<bool>(), 0usize..4), 1..50)
    ) {
        let n = 4;
        let farray = FArrayCounter::new(n);
        let aac = AacCounter::new(n, 64);
        let fa = FetchAddCounter::new();
        let mut expected = 0u64;
        for (is_inc, p) in ops {
            let pid = ProcessId(p);
            if is_inc {
                expected += 1;
                farray.increment(pid);
                aac.increment(pid);
                fa.increment(pid);
            } else {
                prop_assert_eq!(farray.read(), expected);
                prop_assert_eq!(aac.read(), expected);
                prop_assert_eq!(fa.read(), expected);
            }
        }
    }

    /// Snapshots conform to the spec on arbitrary update/scan streams.
    #[test]
    fn snapshots_follow_the_spec(
        ops in proptest::collection::vec((any::<bool>(), 0u64..1_000_000, 0usize..4), 1..50)
    ) {
        let n = 4;
        let dc = DoubleCollectSnapshot::new(n);
        let afek = AfekSnapshot::new(n);
        let pc = PathCopySnapshot::new(n, 64);
        let mut expected = vec![0u64; n];
        for (is_update, v, p) in ops {
            let pid = ProcessId(p);
            if is_update {
                expected[p] = v;
                dc.update(pid, v);
                afek.update(pid, v);
                pc.update(pid, v);
            } else {
                prop_assert_eq!(dc.scan(), expected.clone());
                prop_assert_eq!(afek.scan(), expected.clone());
                prop_assert_eq!(pc.scan(), expected.clone());
            }
        }
    }

    /// The generic f-array maintains exactly the aggregate of its slots
    /// under arbitrary monotone update streams, for all three
    /// aggregations.
    #[test]
    fn farray_aggregates_exactly(
        deltas in proptest::collection::vec((0usize..4, 1i64..100), 1..40)
    ) {
        let n = 4;
        let sum = FArray::<Sum>::new(n);
        let max = FArray::<Max>::new(n);
        let min = FArray::<Min>::new(n);
        let mut slots_sum = vec![0i64; n];
        let mut slots_max = vec![i64::MIN; n];
        let mut slots_min = vec![i64::MAX; n];
        for (p, d) in deltas {
            let pid = ProcessId(p);
            slots_sum[p] += d;
            sum.update(pid, slots_sum[p]);
            slots_max[p] = if slots_max[p] == i64::MIN { d } else { slots_max[p] + d };
            max.update(pid, slots_max[p]);
            slots_min[p] = if slots_min[p] == i64::MAX { -d } else { slots_min[p] - d };
            min.update(pid, slots_min[p]);
            prop_assert_eq!(sum.read(), slots_sum.iter().sum::<i64>());
            prop_assert_eq!(max.read(), *slots_max.iter().max().unwrap());
            prop_assert_eq!(min.read(), *slots_min.iter().min().unwrap());
        }
    }

    /// AAC register: any single value round-trips at any capacity.
    #[test]
    fn aac_round_trips_at_any_capacity(cap in 1u64..2_000, seed in 0u64..1_000_000) {
        let v = seed % cap;
        let reg = AacMaxRegister::new(cap);
        reg.write_max(ProcessId(0), v);
        prop_assert_eq!(reg.read_max(), v);
    }
}
