//! Runs the paper's lower-bound constructions at small scale and prints
//! readable traces — the executable version of Figures 1–3.
//!
//! Part 1: the Theorem 3 essential-set adversary against Algorithm A.
//! Part 2: the Theorem 1 Lemma-1 adversary against the f-array counter.
//!
//! Run with `cargo run --example adversary_trace`.

use ruo::core::counter::sim::SimFArrayCounter;
use ruo::core::maxreg::sim::SimTreeMaxRegister;
use ruo::lowerbound::essential::{run_essential, CaseKind, EssentialConfig};
use ruo::lowerbound::theorem1::run_theorem1;
use ruo::sim::Memory;

fn main() {
    // ---- Part 1: essential sets (Theorem 3, Figures 1-3) ----
    let k = 128;
    println!("=== Essential-set construction (Theorem 3) against Algorithm A, K = {k} ===\n");
    println!(
        "Writers p0..p{} each perform WriteMax(id+1); the adversary keeps an",
        k - 2
    );
    println!("essential set hidden, erasing or halting everyone else.\n");

    let mut mem = Memory::new();
    let reg = SimTreeMaxRegister::new(&mut mem, k);
    let out = run_essential(&reg, &mut mem, k, EssentialConfig::default());

    for t in &out.trace {
        let case = match t.case {
            CaseKind::LowContention => {
                "LOW  contention (Fig. 1: one process per object, Turán-thinned)"
            }
            CaseKind::HighContentionCas => {
                "HIGH contention (Fig. 2: CAS storm — first succeeds & halts, rest fail invisibly)"
            }
            CaseKind::HighContentionWrite => {
                "HIGH contention (write storm — last write covers the others, writer halted)"
            }
            CaseKind::HighContentionRead => "HIGH contention (reads/trivial CAS — all invisible)",
        };
        println!(
            "iter {:>2}: m = {:>3} -> |E| = {:>3}   erased {:>3}   halted {:<4} objects {:>3}   {case}",
            t.iteration,
            t.active_before,
            t.essential_after,
            t.erased,
            t.halted.map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
            t.distinct_objects,
        );
    }
    println!(
        "\nstopped after i* = {} iterations ({:?});",
        out.iterations, out.stop
    );
    println!(
        "every process of the final essential set ({} processes) took {} steps inside ONE WriteMax.",
        out.final_essential.len(),
        out.iterations
    );
    println!(
        "invariants: hidden-set held = {}, Lemma-2 replays faithful = {} ({} replays).",
        out.hidden_invariant_held, out.replays_faithful, out.replays
    );
    println!(
        "epilogue (Lemma 5): fresh reader returned {} in {} step(s); max completed write was {}.",
        out.reader_value, out.reader_steps, out.max_completed_value
    );

    // ---- Part 2: the Lemma-1 adversary (Theorem 1) ----
    let n = 64;
    println!("\n=== Lemma-1 adversary (Theorem 1) against the f-array counter, N = {n} ===\n");
    let mut mem = Memory::new();
    let counter = SimFArrayCounter::new(&mut mem, n);
    let t1 = run_theorem1(&counter, &mut mem, 1_000_000);
    println!(
        "rounds until all {} increments completed: {}",
        n - 1,
        t1.rounds
    );
    println!("knowledge measure M(E_j) per round (bound 3^j): ");
    for (j, m) in t1.knowledge_per_round.iter().enumerate().take(12) {
        println!(
            "  round {:>2}: M = {:>3}  (3^{} = {})",
            j + 1,
            m,
            j + 1,
            3usize.pow(j as u32 + 1).min(n)
        );
    }
    if t1.knowledge_per_round.len() > 12 {
        println!("  ... ({} more rounds)", t1.knowledge_per_round.len() - 12);
    }
    println!("bound held throughout: {}", t1.knowledge_bound_held);
    println!(
        "reader: {} steps, returned {}, aware of {} of {} processes (Lemma 3 requires all).",
        t1.reader_steps, t1.reader_value, t1.reader_awareness, n
    );
}
