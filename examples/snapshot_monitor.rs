//! Scenario: consistent cross-worker statistics with atomic snapshots.
//!
//! Each worker publishes a running "events processed" figure into its
//! own segment. The dashboard needs *consistent* views: the ratio of any
//! two workers' figures is only meaningful if both numbers come from the
//! same instant. That is exactly what a snapshot's `Scan` guarantees and
//! what per-segment reads do not.
//!
//! The example contrasts three scan/update tradeoff points — and
//! demonstrates (by detection, using torn per-segment reads) why a plain
//! array of atomics is not enough.
//!
//! Run with `cargo run --release --example snapshot_monitor`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use ruo::core::snapshot::{AfekSnapshot, DoubleCollectSnapshot, PathCopySnapshot};
use ruo::core::Snapshot;
use ruo::sim::ProcessId;

const WORKERS: usize = 3;
const EVENTS: u64 = 5_000;

/// Workers keep all segments within `1` of each other by publishing in
/// lock-step rounds; a consistent scan can therefore never observe a
/// spread of 2 or more.
fn run_with<S: Snapshot + 'static>(name: &'static str, snap: Arc<S>) {
    let stop = Arc::new(AtomicBool::new(false));
    let round = Arc::new(AtomicU64::new(0));

    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let snap = Arc::clone(&snap);
            let round = Arc::clone(&round);
            thread::spawn(move || {
                for v in 1..=EVENTS {
                    snap.update(ProcessId(w), v);
                    // Barrier-ish pacing: wait until every worker reached v.
                    let target = v * WORKERS as u64;
                    round.fetch_add(1, Ordering::SeqCst);
                    while round.load(Ordering::SeqCst) < target {
                        // On small machines (CI, single-core boxes) a
                        // pure spin starves the other workers.
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    let dashboard = {
        let snap = Arc::clone(&snap);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut scans = 0u64;
            let mut max_spread = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let view = snap.scan();
                let hi = *view.iter().max().unwrap();
                let lo = *view.iter().min().unwrap();
                max_spread = max_spread.max(hi - lo);
                scans += 1;
            }
            (scans, max_spread)
        })
    };

    for h in workers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let (scans, max_spread) = dashboard.join().unwrap();
    println!(
        "{name:<16} scans={scans:>8}  max spread seen={max_spread}  (consistent scans ⇒ spread ≤ 1)"
    );
    assert!(
        max_spread <= 1,
        "{name}: scan tore across rounds (spread {max_spread})"
    );
    assert_eq!(snap.scan(), vec![EVENTS; WORKERS]);
}

fn main() {
    println!("cross-worker statistics: {WORKERS} workers × {EVENTS} events, lock-step rounds\n");
    run_with(
        "double-collect",
        Arc::new(DoubleCollectSnapshot::new(WORKERS)),
    );
    run_with("afek (wait-free)", Arc::new(AfekSnapshot::new(WORKERS)));
    run_with(
        "path-copy",
        Arc::new(PathCopySnapshot::new(WORKERS, EVENTS * WORKERS as u64 + 1)),
    );

    // The non-solution: independent atomics can tear.
    println!("\nnon-snapshot baseline (independent atomics, torn reads possible):");
    let cells: Arc<Vec<AtomicU64>> = Arc::new((0..WORKERS).map(|_| AtomicU64::new(0)).collect());
    let writer = {
        let cells = Arc::clone(&cells);
        thread::spawn(move || {
            for v in 1..=EVENTS {
                for c in cells.iter() {
                    c.store(v, Ordering::SeqCst);
                }
            }
        })
    };
    let mut max_spread = 0u64;
    for _ in 0..200_000 {
        let view: Vec<u64> = cells.iter().map(|c| c.load(Ordering::SeqCst)).collect();
        let hi = *view.iter().max().unwrap();
        let lo = *view.iter().min().unwrap();
        max_spread = max_spread.max(hi - lo);
    }
    writer.join().unwrap();
    println!("naive reads        max spread seen={max_spread}  (anything > 1 is a torn view)");
}
