//! Scenario: high-water-mark tracking in a log-ingestion pipeline.
//!
//! A fleet of ingesters consumes records tagged with monotonically
//! increasing offsets (out of order across ingesters). Two things are
//! tracked:
//!
//! * the **highest offset ever seen** — a max register; queried on every
//!   request by latency-sensitive readers, so `ReadMax` cost matters;
//! * the **worst record lag** observed — another max register.
//!
//! This is the workload shape that motivates Algorithm A: writes happen
//! on ingest (thousands/sec), reads happen on *every* status query —
//! the O(1)/O(log v) split is exactly right. The example runs the same
//! pipeline over Algorithm A and the AAC register and reports how many
//! status queries each sustained.
//!
//! Run with `cargo run --release --example watermark`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ruo::core::maxreg::{AacMaxRegister, TreeMaxRegister};
use ruo::core::MaxRegister;
use ruo::sim::ProcessId;

const INGESTERS: usize = 4;
const RECORDS_PER_INGESTER: u64 = 50_000;
const MAX_OFFSET: u64 = 1 << 20;

struct PipelineReport {
    name: &'static str,
    final_watermark: u64,
    max_lag: u64,
    status_queries: u64,
    elapsed: Duration,
}

fn run_pipeline<R: MaxRegister + 'static>(
    name: &'static str,
    watermark: Arc<R>,
    lag: Arc<R>,
) -> PipelineReport {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();

    let ingesters: Vec<_> = (0..INGESTERS)
        .map(|t| {
            let watermark = Arc::clone(&watermark);
            let lag = Arc::clone(&lag);
            thread::spawn(move || {
                // Each ingester sees a deterministic shuffled slice of offsets.
                let mut state = t as u64 + 1;
                for i in 0..RECORDS_PER_INGESTER {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let offset = (i * INGESTERS as u64 + t as u64) % MAX_OFFSET;
                    watermark.write_max(ProcessId(t), offset);
                    // Lag: how far behind the global watermark this record was.
                    let seen = watermark.read_max();
                    let record_lag = seen.saturating_sub(offset) % 1024;
                    lag.write_max(ProcessId(t), record_lag);
                }
            })
        })
        .collect();

    // Status endpoint: hammer reads until ingestion finishes.
    let status = {
        let watermark = Arc::clone(&watermark);
        let lag = Arc::clone(&lag);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut queries = 0u64;
            let mut last = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let w = watermark.read_max();
                let _l = lag.read_max();
                assert!(w >= last, "watermark went backwards");
                last = w;
                queries += 1;
            }
            queries
        })
    };

    for h in ingesters {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let status_queries = status.join().unwrap();

    PipelineReport {
        name,
        final_watermark: watermark.read_max(),
        max_lag: lag.read_max(),
        status_queries,
        elapsed: start.elapsed(),
    }
}

fn main() {
    let tree = run_pipeline(
        "Algorithm A (O(1) read)",
        Arc::new(TreeMaxRegister::new(INGESTERS)),
        Arc::new(TreeMaxRegister::new(INGESTERS)),
    );
    let aac = run_pipeline(
        "AAC register (O(log M) read)",
        Arc::new(AacMaxRegister::new(MAX_OFFSET)),
        Arc::new(AacMaxRegister::new(MAX_OFFSET)),
    );

    println!("log-ingestion pipeline: {INGESTERS} ingesters × {RECORDS_PER_INGESTER} records\n");
    for r in [&tree, &aac] {
        println!(
            "{:<30} watermark={:>8}  max_lag={:>4}  status_queries={:>9}  ingest_time={:?}",
            r.name, r.final_watermark, r.max_lag, r.status_queries, r.elapsed
        );
    }
    assert_eq!(tree.final_watermark, aac.final_watermark);
    println!(
        "\nSame answers; the O(1)-read register served {:.1}x the status traffic.",
        tree.status_queries as f64 / aac.status_queries.max(1) as f64
    );
}
