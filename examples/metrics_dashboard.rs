//! Scenario: a service's live metrics page, built entirely from
//! restricted-use objects.
//!
//! Four worker threads serve "requests" (simulated work with a
//! deterministic latency distribution); a dashboard thread renders
//! peak/fastest latency, a latency histogram with quantile estimates,
//! and exact progress — all reads costing one atomic load per metric
//! component, no locks anywhere.
//!
//! Run with `cargo run --release --example metrics_dashboard`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ruo::metrics::{Histogram, LowWatermark, ProgressGauge, Watermark};
use ruo::sim::ProcessId;

const WORKERS: usize = 4;
const REQUESTS_PER_WORKER: u64 = 200_000;

struct Metrics {
    peak_latency: Watermark,
    fastest: LowWatermark,
    latencies: Histogram,
    progress: ProgressGauge,
}

fn main() {
    let metrics = Arc::new(Metrics {
        peak_latency: Watermark::new(WORKERS),
        fastest: LowWatermark::new(WORKERS),
        latencies: Histogram::new(WORKERS, &[50, 100, 250, 500, 1_000, 5_000]),
        progress: ProgressGauge::new(WORKERS, WORKERS as u64 * REQUESTS_PER_WORKER),
    });
    let stop = Arc::new(AtomicBool::new(false));

    let dashboard = {
        let m = Arc::clone(&metrics);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut renders = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = m.latencies.snapshot();
                let p50 = snap.quantile_upper_bound(0.5);
                let p99 = snap.quantile_upper_bound(0.99);
                renders += 1;
                if renders.is_multiple_of(50) {
                    println!(
                        "[{:>5.1}%] served={:>7}  peak={:>5}µs  fastest={:>3}µs  p50≤{:?}µs  p99≤{:?}µs",
                        m.progress.fraction() * 100.0,
                        snap.total(),
                        m.peak_latency.get(),
                        m.fastest.get().unwrap_or(0),
                        p50,
                        p99,
                    );
                }
                thread::sleep(Duration::from_millis(2));
            }
            renders
        })
    };

    let workers: Vec<_> = (0..WORKERS)
        .map(|t| {
            let m = Arc::clone(&metrics);
            thread::spawn(move || {
                let pid = ProcessId(t);
                let mut state = t as u64 + 1;
                for _ in 0..REQUESTS_PER_WORKER {
                    // Deterministic heavy-tailed "latency" in µs.
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let r = state >> 33;
                    let latency = 20 + r % 80 + if r.is_multiple_of(97) { 2_000 } else { 0 };
                    m.peak_latency.record(pid, latency);
                    m.fastest.record(pid, latency);
                    m.latencies.record(pid, latency);
                    m.progress.complete(pid);
                }
            })
        })
        .collect();

    for w in workers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let renders = dashboard.join().unwrap();

    let snap = metrics.latencies.snapshot();
    println!(
        "\nfinal: {} requests, {} dashboard renders",
        snap.total(),
        renders
    );
    println!(
        "bucket counts (≤50, ≤100, ≤250, ≤500, ≤1000, ≤5000, >5000): {:?}",
        snap.bucket_counts()
    );
    assert_eq!(snap.total(), WORKERS as u64 * REQUESTS_PER_WORKER);
    assert!(metrics.progress.is_complete());
    assert!(
        metrics.peak_latency.get() >= 2_000,
        "the tail must register"
    );
    assert!(metrics.fastest.get().unwrap() >= 20);
}
