//! Quickstart: a wait-free max register shared by eight threads.
//!
//! `TreeMaxRegister` is the paper's Algorithm A — reads cost one atomic
//! load no matter how many threads write.
//!
//! Run with `cargo run --example quickstart`.

use std::sync::Arc;
use std::thread;

use ruo::core::maxreg::TreeMaxRegister;
use ruo::core::MaxRegister;
use ruo::sim::ProcessId;

fn main() {
    const THREADS: usize = 8;
    const WRITES_PER_THREAD: u64 = 10_000;

    // One register shared by THREADS processes. Each thread must use its
    // own ProcessId (the id picks the thread's leaf in the tree).
    let reg = Arc::new(TreeMaxRegister::new(THREADS));

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                for i in 0..WRITES_PER_THREAD {
                    // Interleaved value streams: thread t writes t, t+8, ...
                    reg.write_max(ProcessId(t), i * THREADS as u64 + t as u64);
                }
            })
        })
        .collect();

    // A reader can watch the high-water mark live; values only grow.
    let watcher = {
        let reg = Arc::clone(&reg);
        thread::spawn(move || {
            let mut last = 0;
            let mut observations = 0u64;
            while last < (WRITES_PER_THREAD - 1) * THREADS as u64 + THREADS as u64 - 1 {
                let v = reg.read_max(); // O(1): a single atomic load
                assert!(v >= last, "max register regressed: {last} -> {v}");
                last = v;
                observations += 1;
            }
            observations
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    let observations = watcher.join().unwrap();

    let expected = (WRITES_PER_THREAD - 1) * THREADS as u64 + THREADS as u64 - 1;
    println!("final maximum: {} (expected {expected})", reg.read_max());
    println!("watcher performed {observations} O(1) reads while writers ran");
    assert_eq!(reg.read_max(), expected);
}
