//! Scenario: verifying YOUR OWN lock-free algorithm with the simulator.
//!
//! Suppose you sketch a "max pair" — a register holding the two largest
//! values ever written, as two cells: `hi` and `lo`. First attempt:
//!
//! ```text
//! write(v):  h = read(hi)
//!            if v > h { write(hi, v); write(lo, h) }     // demote old max
//!            else if v > read(lo) { write(lo, v) }
//! read2():   (read(hi), read(lo))
//! ```
//!
//! Plausible — and wrong. This example (1) expresses the algorithm as
//! simulator step machines in ~30 lines, (2) lets the exhaustive
//! explorer find a breaking schedule automatically, and (3) shows the
//! CAS-repaired version passing the same exploration.
//!
//! Run with `cargo run --release --example model_checking`.

use ruo::sim::explore::{enumerate, ExploreOp};
use ruo::sim::history::OpOutput;
use ruo::sim::{cas, done, read, write, Machine, Memory, ObjId, OpDesc, ProcessId, Step};

/// The buggy write: plain writes, check-then-act races everywhere.
fn buggy_write(hi: ObjId, lo: ObjId, v: i64) -> Machine {
    Machine::new(read(hi, move |h| {
        if v > h {
            write(hi, v, move || write(lo, h, move || done(0)))
        } else {
            read(lo, move |l| {
                if v > l {
                    write(lo, v, move || done(0))
                } else {
                    done(0)
                }
            })
        }
    }))
}

/// The repaired write: raise each cell with a CAS loop, demoting what
/// the `hi` swap displaced.
fn fixed_write(hi: ObjId, lo: ObjId, v: i64) -> Machine {
    fn raise(cell: ObjId, v: i64, k: Box<dyn FnOnce(Option<i64>) -> Step + Send>) -> Step {
        read(cell, move |cur| {
            if v <= cur {
                k(Some(v)) // v didn't displace anything here; try lower
            } else {
                cas(cell, cur, v, move |ok| {
                    if ok == 1 {
                        k(if cur >= 0 { Some(cur) } else { None })
                    } else {
                        raise(cell, v, k)
                    }
                })
            }
        })
    }
    Machine::new(raise(
        hi,
        v,
        Box::new(move |displaced| match displaced {
            None => done(0),
            Some(d) => raise(lo, d, Box::new(|_| done(0))),
        }),
    ))
}

fn read2(hi: ObjId, lo: ObjId) -> Machine {
    Machine::new(read(hi, move |h| read(lo, move |l| done(h * 1000 + l))))
}

/// The spec: if the read2 ran strictly after both writes of {5, 7}
/// completed, it must see hi = 7, lo = 5. (Histories are sorted by
/// invocation time, so locate operations by process id.)
fn quiescent_read_is_correct(h: &ruo::sim::History) -> bool {
    let reader = h
        .ops()
        .iter()
        .find(|o| o.pid == ProcessId(2))
        .expect("reader present");
    let quiescent = h
        .ops()
        .iter()
        .filter(|o| o.pid != ProcessId(2))
        .all(|w| w.response.unwrap() <= reader.invoke);
    if !quiescent {
        return true; // only quiescent reads have a determined answer
    }
    matches!(reader.output, Some(OpOutput::Value(v)) if v == 7 * 1000 + 5)
}

fn explore(name: &str, make: fn(ObjId, ObjId, i64) -> Machine) {
    let setup = move || {
        let mut mem = Memory::new();
        let hi = mem.alloc(-1);
        let lo = mem.alloc(-1);
        (
            mem,
            vec![
                make(hi, lo, 5),
                make(hi, lo, 7),
                // The explorer interleaves the reader everywhere; the
                // checker only judges schedules where it ran quiescently.
                read2(hi, lo),
            ],
        )
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(5),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::WriteMax(7),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ];
    let summary = enumerate(&setup, &ops, &mut quiescent_read_is_correct, 2_000_000);
    match summary.violation {
        Some(schedule) => println!(
            "{name}: BROKEN — quiescent read missed a value after {} schedules\n  schedule: {:?}",
            summary.schedules, schedule
        ),
        None => println!(
            "{name}: no violation in {} schedules (truncated: {})",
            summary.schedules, summary.truncated
        ),
    }
}

fn main() {
    println!("model-checking a user-written \"top two values\" register\n");
    explore("naive read-then-write", buggy_write);
    explore("CAS raise-and-demote ", fixed_write);
    println!("\nThe naive version loses a value when both writers read `hi` before");
    println!("either writes it (or when the demotion of the old maximum races a");
    println!("direct `lo` update). The explorer finds such a schedule mechanically —");
    println!("the same harness that validates this repository's algorithms.");
}
