//! Scenario: live progress reporting for a parallel batch job.
//!
//! Workers chew through a fixed pool of tasks and bump a shared counter
//! per completed task; a monitor thread polls the counter to drive a
//! progress read-out. The counter is on the read *and* write hot path,
//! so the read/update tradeoff (Theorem 1) is the whole game:
//!
//! * `FArrayCounter` — O(1) reads, O(log N) increments (optimal split
//!   for read/write/CAS per Theorem 2);
//! * `AacCounter` — no CAS at all, O(log N) reads, O(log² N) increments;
//! * `FetchAddCounter` — the out-of-model hardware baseline.
//!
//! Run with `cargo run --release --example progress_counter`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ruo::core::counter::{AacCounter, FArrayCounter, FetchAddCounter};
use ruo::core::Counter;
use ruo::sim::ProcessId;

const WORKERS: usize = 4;
const TASKS_PER_WORKER: u64 = 100_000;
const TOTAL: u64 = WORKERS as u64 * TASKS_PER_WORKER;

fn run_job<C: Counter + 'static>(name: &'static str, counter: Arc<C>) -> (Duration, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();

    let monitor = {
        let counter = Arc::clone(&counter);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut polls = 0u64;
            let mut last = 0u64;
            let mut next_report = TOTAL / 4;
            while !stop.load(Ordering::Relaxed) {
                let done = counter.read();
                assert!(done >= last, "progress went backwards");
                assert!(done <= TOTAL, "overcounted: {done} > {TOTAL}");
                last = done;
                polls += 1;
                if done >= next_report {
                    println!("  [{name}] {:>3}% complete", done * 100 / TOTAL);
                    next_report += TOTAL / 4;
                }
            }
            polls
        })
    };

    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                for _ in 0..TASKS_PER_WORKER {
                    // "Do the task" — then record completion.
                    counter.increment(ProcessId(w));
                }
            })
        })
        .collect();

    for h in workers {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    stop.store(true, Ordering::Relaxed);
    let polls = monitor.join().unwrap();

    assert_eq!(
        counter.read(),
        TOTAL,
        "every completed task must be counted"
    );
    (elapsed, polls)
}

fn main() {
    println!("parallel batch job: {WORKERS} workers × {TASKS_PER_WORKER} tasks\n");
    let (t_farray, p_farray) = run_job("f-array", Arc::new(FArrayCounter::new(WORKERS)));
    let (t_aac, p_aac) = run_job("AAC", Arc::new(AacCounter::new(WORKERS, TOTAL)));
    let (t_fa, p_fa) = run_job("fetch-add", Arc::new(FetchAddCounter::new()));

    println!(
        "\n{:<12} {:>12} {:>16}",
        "counter", "job time", "monitor polls"
    );
    println!("{:<12} {:>12?} {:>16}", "f-array", t_farray, p_farray);
    println!("{:<12} {:>12?} {:>16}", "AAC", t_aac, p_aac);
    println!("{:<12} {:>12?} {:>16}", "fetch-add", t_fa, p_fa);
    println!("\nAll three counted exactly {TOTAL}; they differ only in where the");
    println!("steps go — reads (AAC), increments (f-array), or neither by using a");
    println!("primitive outside the paper's model (fetch-add).");
}
