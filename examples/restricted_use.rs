//! What "restricted use" means in practice — and what happens at the
//! edges.
//!
//! The paper's positive results are for *restricted-use* objects:
//! bounded values (max registers) or polynomially many updates (counters,
//! snapshots). This example walks the bounds of every bounded structure
//! in the crate and shows the graceful-degradation story:
//!
//! * `AacMaxRegister::try_write_max` returns a typed error past the bound;
//! * `AacCounter` panics on increment `max_increments + 1` (the internal
//!   `WriteMax` would overflow) — shown via `catch_unwind`;
//! * `PathCopySnapshot` enforces its update budget, because memory is
//!   the resource its restriction protects;
//! * the unbounded structures (Algorithm A, f-array counter) keep going.
//!
//! Run with `cargo run --example restricted_use`.

use std::panic;

use ruo::core::counter::{AacCounter, FArrayCounter};
use ruo::core::maxreg::{AacMaxRegister, TreeMaxRegister};
use ruo::core::snapshot::PathCopySnapshot;
use ruo::core::{Counter, MaxRegister, Snapshot};
use ruo::sim::ProcessId;

fn main() {
    // The bound-violation demos below rely on panics; keep the output
    // readable by silencing the default backtrace printer.
    panic::set_hook(Box::new(|_| {}));
    let p0 = ProcessId(0);

    // ---- Bounded max register ----
    println!("== AacMaxRegister, capacity 16 (values 0..16) ==");
    let reg = AacMaxRegister::new(16);
    reg.write_max(p0, 15);
    println!(
        "  write_max(15)      -> ok, read_max() = {}",
        reg.read_max()
    );
    match reg.try_write_max(16) {
        Ok(()) => unreachable!(),
        Err(e) => println!("  try_write_max(16)  -> Err: {e}"),
    }
    println!("  (the register still reads {})", reg.read_max());

    // ---- Restricted-use counter ----
    println!("\n== AacCounter, max_increments = 3 ==");
    let counter = AacCounter::new(2, 3);
    for i in 1..=3 {
        counter.increment(p0);
        println!("  increment #{i}      -> ok, read() = {}", counter.read());
    }
    let result = panic::catch_unwind(|| counter.increment(p0));
    println!(
        "  increment #4      -> {}",
        if result.is_err() {
            "panicked (restricted-use bound exceeded)"
        } else {
            "unexpectedly succeeded!"
        }
    );

    // ---- Restricted-use snapshot ----
    println!("\n== PathCopySnapshot, 4 segments, max_updates = 5 ==");
    let snap = PathCopySnapshot::new(4, 5);
    for i in 1..=5u64 {
        snap.update(ProcessId((i % 4) as usize), i);
    }
    println!(
        "  5 updates          -> ok, scan() = {:?} ({} of {} budget used)",
        snap.scan(),
        snap.updates(),
        snap.max_updates()
    );
    let result = panic::catch_unwind(|| snap.update(p0, 99));
    println!(
        "  update #6          -> {}",
        if result.is_err() {
            "panicked (update budget exhausted)"
        } else {
            "unexpectedly succeeded!"
        }
    );

    // ---- The unbounded structures keep going ----
    println!("\n== Unbounded structures for comparison ==");
    let tree = TreeMaxRegister::new(2);
    tree.write_max(p0, u64::MAX >> 1); // largest encodable value (2^63 - 1)
    println!(
        "  TreeMaxRegister    -> write_max(2^63 - 1) ok, read_max() = {}",
        tree.read_max()
    );
    let farray = FArrayCounter::new(2);
    for _ in 0..10_000 {
        farray.increment(p0);
    }
    println!(
        "  FArrayCounter      -> 10_000 increments ok, read() = {}",
        farray.read()
    );

    println!("\nThe bounds are the *price* of the upper bounds: Theorem 2 says no");
    println!("read-optimal unrestricted counter from read/write/CAS can beat");
    println!("logarithmic updates anyway, and the AAC structures only achieve their");
    println!("polylog costs because the value/update space is capped.");
}
