//! # ruo — restricted-use objects with read/update complexity tradeoffs
//!
//! Facade crate re-exporting the whole workspace. See the README for an
//! overview and `DESIGN.md` for the mapping to the PODC 2014 paper
//! *"Complexity Tradeoffs for Read and Update Operations"* (Hendler &
//! Khait).
//!
//! * [`core`] — the concurrent objects: max registers (Algorithm A, AAC),
//!   counters and single-writer snapshots, each with a real-atomics
//!   implementation and a simulator step-machine implementation.
//! * [`sim`] — the deterministic shared-memory simulator (base objects,
//!   schedulers, exact step counting, linearizability checking).
//! * [`lowerbound`] — the mechanized lower-bound constructions
//!   (information flow, the Lemma 1 adversary, essential sets).
//! * [`metrics`] — a practical metrics toolkit (watermarks, progress
//!   gauges, histograms) built on the objects above.
//! * [`scenario`] — the declarative scenario engine: an object registry
//!   covering both faces of every implementation, JSON scenario specs,
//!   and one driver each for threads, the simulator and the explorer.
//! * [`serve`] — the fault-tolerant service layer: a std-TCP server over
//!   the registry objects with chaos injection, deadlines/retries/
//!   backoff, graceful degradation, and a post-run linearizability
//!   audit.

pub use ruo_core as core;
pub use ruo_lowerbound as lowerbound;
pub use ruo_metrics as metrics;
pub use ruo_scenario as scenario;
pub use ruo_serve as serve;
pub use ruo_sim as sim;
