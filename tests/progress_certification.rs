//! Progress certification (W6): [`ProgressCertifier`] turns the paper's
//! progress claims into checkable verdicts.
//!
//! * Wait-free algorithms (Algorithm A, the f-array counter) certify
//!   their step bounds even while a [`FaultPlan`] crashes peers
//!   mid-operation — crash-pending work is expected, never starvation.
//! * Obstruction-free algorithms (the double-collect scan) *fail*
//!   certification under the adversarial schedules the paper says can
//!   starve them — the watchdog is the detector, not a formality.
//! * The same certifier works under genuine hardware concurrency,
//!   including a worker "killed" mid-workload.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use ruo::core::snapshot::sim::{SimDoubleCollectSnapshot, SimSnapshot};
use ruo::metrics::{ProgressCertifier, ProgressViolation};
use ruo::scenario::{
    measure_step_bound, run_sim, run_sim_seed, CrashAt, EngineKind, Family, FaultSpec, OpMix,
    ScenarioSpec, SchedulePolicy,
};
use ruo::sim::history::OpDesc;
use ruo::sim::{Executor, FaultPlan, Memory, OpSpec, ProcessId, RoundRobin, WorkloadBuilder};

/// Algorithm A's operations have schedule-independent step counts, so
/// one crash-free run yields the exact wait-free bound — which must then
/// hold across a sweep of random schedules with random crash plans, with
/// crashed peers' pending writes never counted as starvation. The whole
/// pipeline (bound measurement, sweep, certification) is the scenario
/// engine's `certify` knob.
#[test]
fn algorithm_a_certifies_its_step_bound_under_crashed_peers() {
    let mut spec = ScenarioSpec::new(
        "cert-tree-crash-sweep",
        Family::MaxReg,
        "tree",
        EngineKind::Sim,
        4,
    );
    spec.seed = 0;
    spec.seeds = 40;
    spec.ops_per_process = 2; // one write, one read per process
    spec.mix = OpMix::Alternate;
    spec.certify = true;
    spec.faults = Some(FaultSpec::Random {
        crashes: 1,
        max_after: 12,
    });
    let report = run_sim(&spec, false).unwrap();
    assert!(report.ok, "sweep failed: {:?}", report.notes);
    assert_eq!(report.counter("violations"), Some(0));
    assert_eq!(report.counter("cert_ok"), Some(1));
    let bound = measure_step_bound(&spec).unwrap();
    assert_eq!(report.counter("cert_bound"), Some(bound));
    assert_eq!(
        report.counter("cert_worst_steps"),
        Some(bound),
        "the bound is tight"
    );
    assert!(
        report.counter("cert_crashed_pending").unwrap() > 0,
        "the crash sweep must actually leave pending operations"
    );
    assert!(report.counter("cert_completed").unwrap() > 0);
}

/// Same certification for the f-array counter, with a hand-picked crash
/// mid-propagation instead of a random sweep — `run_sim_seed` runs the
/// single schedule, the test drives the certifier itself.
#[test]
fn farray_counter_certifies_with_a_peer_crashed_mid_propagation() {
    let n = 3;
    let mut spec = ScenarioSpec::new(
        "cert-farray-torn",
        Family::Counter,
        "farray",
        EngineKind::Sim,
        n,
    );
    spec.ops_per_process = 2;
    spec.mix = OpMix::Alternate;
    spec.schedule = SchedulePolicy::RoundRobin;
    // p1 crashes after 3 events: its leaf increment landed but the sum
    // propagation is torn mid-tree.
    spec.faults = Some(FaultSpec::Explicit {
        crashes: vec![CrashAt { pid: 1, after: 3 }],
    });
    let plan = FaultPlan::new().crash(ProcessId(1), 3);
    let run = run_sim_seed(&spec, 0, &plan).unwrap();
    assert!(
        run.violation.is_none(),
        "completion rule covers the torn increment: {:?}",
        run.violation
    );

    let cert = ProgressCertifier::new(n, 64);
    cert.record_outcome(&run.outcome);
    let report = cert.certify().expect("no starvation, bound generous");
    assert_eq!(report.crashed_pending, 1);
    assert_eq!(cert.starved(), 0, "a crashed process is not starvation");
}

/// The double-collect scan is only obstruction-free: a fair round-robin
/// schedule with a concurrent updater stream makes every second collect
/// differ from the first, so the scan livelocks until the step budget
/// runs out — and the certifier must call that starvation.
#[test]
fn starved_scans_fail_certification() {
    let n = 2;
    let mut mem = Memory::new();
    let snap = Arc::new(SimDoubleCollectSnapshot::new(&mut mem, n));
    let mut w = WorkloadBuilder::new(n);
    for i in 0..30u64 {
        let s = Arc::clone(&snap);
        w.op(
            ProcessId(0),
            OpSpec::update(OpDesc::Update((i + 1) as i64), move || {
                s.update(ProcessId(0), i + 1)
            }),
        );
    }
    let s = Arc::clone(&snap);
    let s2 = Arc::clone(&snap);
    w.op(
        ProcessId(1),
        OpSpec::vector(
            OpDesc::Scan,
            move || s.scan(ProcessId(1)),
            move |token| {
                s2.take_scan_result(token)
                    .into_iter()
                    .map(|v| v as i64)
                    .collect()
            },
        ),
    );
    let outcome = Executor::with_step_budget(60).run(&mut mem, w, &mut RoundRobin::new());
    assert!(!outcome.all_done);
    assert!(outcome.crashed.is_empty());
    let scan = outcome
        .history
        .ops()
        .iter()
        .find(|op| op.desc == OpDesc::Scan)
        .expect("scan was invoked");
    assert!(!scan.is_complete(), "the scan must have livelocked");

    let cert = ProgressCertifier::new(n, 1_000);
    cert.record_outcome(&outcome);
    match cert.certify() {
        Err(ProgressViolation::Starvation { count }) => assert!(count >= 1),
        other => panic!("starved scan not flagged: {other:?}"),
    }
    assert_eq!(cert.crashed_pending(), 0);
}

/// A CAS-retry max register instrumented to count its attempts — the
/// thread-world analogue of step counts. Lock-free, not wait-free: the
/// certifier is given a generous bound that real contention never hits.
struct CountingCasMaxRegister {
    cell: AtomicI64,
}

impl CountingCasMaxRegister {
    fn new() -> Self {
        CountingCasMaxRegister {
            cell: AtomicI64::new(0),
        }
    }

    /// Returns the number of CAS attempts the write needed.
    fn write_max(&self, v: i64) -> u64 {
        let mut attempts = 1u64;
        let mut cur = self.cell.load(Ordering::SeqCst);
        while cur < v {
            match self
                .cell
                .compare_exchange(cur, v, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => break,
                Err(seen) => {
                    cur = seen;
                    attempts += 1;
                }
            }
        }
        attempts
    }

    fn read(&self) -> i64 {
        self.cell.load(Ordering::SeqCst)
    }
}

/// The certifier under genuine hardware concurrency: three workers drive
/// a shared register to completion while a fourth is "killed" mid-
/// workload (its in-flight operation recorded as crash-pending, its
/// remaining work never invoked). Counts must be exact and the killed
/// worker must not read as starvation.
#[test]
fn threads_certify_progress_with_a_killed_worker() {
    let n = 4;
    let per = 400i64;
    let killed = ProcessId(0);
    let reg = Arc::new(CountingCasMaxRegister::new());
    let cert = Arc::new(ProgressCertifier::new(n, 1_000_000));
    std::thread::scope(|s| {
        for t in 0..n {
            let reg = Arc::clone(&reg);
            let cert = Arc::clone(&cert);
            s.spawn(move || {
                for i in 0..per {
                    if ProcessId(t) == killed && i == per / 2 {
                        // The worker dies here: one op in flight, never
                        // finished; the rest of its workload never runs.
                        cert.record_crashed_pending(ProcessId(t));
                        return;
                    }
                    let attempts = reg.write_max(t as i64 * per + i + 1);
                    cert.record_completion(ProcessId(t), attempts);
                }
            });
        }
    });
    let report = cert.certify().expect("kill is not starvation");
    assert_eq!(
        report.completed,
        (n as i64 - 1) as u64 * per as u64 + (per / 2) as u64
    );
    assert_eq!(report.crashed_pending, 1);
    assert!(report.worst_steps >= 1);
    // The register ended at the true maximum: worker 0 was killed, so
    // the top writer (worker n-1) ran to completion and its last value
    // dominates everything the killed worker managed to write.
    assert_eq!(reg.read(), (n as i64 - 1) * per + per);
}
