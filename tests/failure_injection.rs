//! Failure injection: crafted adversarial schedules that (a) break a
//! deliberately weakened variant of Algorithm A — demonstrating that
//! the paper's *double* CAS per level is load-bearing — and (b) confirm
//! the real algorithm helps stalled writers.
//!
//! Algorithm A performs the read-children-then-CAS step **twice** per
//! level; the paper's Lemma 9 shows the second attempt is exactly what
//! makes a failed CAS harmless. The first test builds the classic
//! counterexample for the single-CAS variant:
//!
//! 1. `A` (writing 2) propagates into the shared subtree root, then
//!    pauses just before its root CAS, holding a stale max of 2;
//! 2. `B` (writing 3) propagates 3 into the subtree root, reads it,
//!    and pauses before its root CAS holding max 3;
//! 3. `A`'s CAS installs 2 at the root; `B`'s CAS fails — and the
//!    single-CAS variant gives up, completing `WriteMax(3)` with the
//!    root stuck at 2. A subsequent `ReadMax` returns 2: not
//!    linearizable, and the history checker says so.
//!
//! The same schedule against the real double-CAS machine ends with the
//! root at 3.

use std::sync::Arc;

use ruo::core::maxreg::sim::{SimMaxRegister, SimTreeMaxRegister};
use ruo::core::shape::AlgorithmATree;
use ruo::scenario::{
    build_sim_object, run_sim_seed, CrashAt, EngineKind, Family, FaultSpec, OpMix, ScenarioSpec,
    SimObject,
};
use ruo::sim::history::{History, OpDesc, OpOutput, OpRecord};
use ruo::sim::lin::{check_max_register, check_snapshot, ViolationKind};
use ruo::sim::{
    cas, done, read, write, Executor, FaultPlan, Machine, Memory, ObjId, OpSpec, ProcessId,
    RandomScheduler, Step, Word, WorkloadBuilder, NEG_INF,
};

/// Applies exactly `k` events of `machine` (panics if it finishes
/// early).
fn advance(mem: &mut Memory, pid: ProcessId, machine: &mut Machine, k: usize) {
    for i in 0..k {
        let prim = machine
            .enabled()
            .unwrap_or_else(|| panic!("machine finished after {i} of {k} events"));
        let resp = mem.apply(pid, prim);
        machine.feed(resp);
    }
}

/// Runs `machine` to completion.
fn finish(mem: &mut Memory, pid: ProcessId, machine: &mut Machine) -> usize {
    let mut extra = 0;
    while let Some(prim) = machine.enabled() {
        let resp = mem.apply(pid, prim);
        machine.feed(resp);
        extra += 1;
    }
    extra
}

/// One propagation level: parent cell plus optional child cells.
type Levels = Arc<Vec<(ObjId, Option<ObjId>, Option<ObjId>)>>;

/// The *broken* variant: Algorithm A's write with only ONE
/// read-children-and-CAS attempt per level.
struct BrokenTreeWrite {
    tree: Arc<AlgorithmATree>,
    cells: Arc<Vec<ObjId>>,
}

impl BrokenTreeWrite {
    fn new(mem: &mut Memory, n: usize) -> Self {
        let tree = AlgorithmATree::new(n);
        let cells = mem.alloc_n(tree.shape().len(), NEG_INF);
        BrokenTreeWrite {
            tree: Arc::new(tree),
            cells: Arc::new(cells),
        }
    }

    fn write_max(&self, pid: ProcessId, v: u64) -> Machine {
        let leaf = self.tree.leaf_for(pid.index(), v);
        let shape = self.tree.shape();
        let levels: Levels = Arc::new(
            shape
                .ancestors(leaf)
                .into_iter()
                .map(|a| {
                    let info = shape.node(a);
                    (
                        self.cells[a],
                        info.left.map(|i| self.cells[i]),
                        info.right.map(|i| self.cells[i]),
                    )
                })
                .collect(),
        );
        let leaf_cell = self.cells[leaf];
        let w = v as Word;
        fn level(levels: Levels, i: usize) -> Step {
            if i == levels.len() {
                return done(0);
            }
            let (node, l, r) = levels[i];
            let rd = move |o: Option<ObjId>, k: Box<dyn FnOnce(Word) -> Step + Send>| match o {
                Some(o) => read(o, k),
                None => k(NEG_INF),
            };
            read(node, move |old| {
                rd(
                    l,
                    Box::new(move |lv| {
                        rd(
                            r,
                            Box::new(move |rv| {
                                // ONE attempt only — the injected fault.
                                cas(node, old, lv.max(rv), move |_| level(levels, i + 1))
                            }),
                        )
                    }),
                )
            })
        }
        Machine::new(read(leaf_cell, move |old| {
            if w <= old {
                done(0)
            } else {
                write(leaf_cell, w, move || level(levels, 0))
            }
        }))
    }

    fn read_max(&self) -> Machine {
        let root = self.cells[self.tree.root()];
        Machine::new(read(root, |v| done(v.max(0))))
    }
}

/// The crafted schedule. With `per_level_pause` = events to advance each
/// writer before unleashing the CAS race: leaf (2 events) + first level
/// (one full attempt) + root-level reads (3 events).
#[test]
fn single_cas_variant_loses_a_completed_write() {
    let mut mem = Memory::new();
    let reg = BrokenTreeWrite::new(&mut mem, 2);
    let a = ProcessId(0);
    let b = ProcessId(1);
    // N = 2: values ≥ 2 go to the writers' TR leaves; the propagation
    // path is [TR-root, root]. Broken machine: 2 leaf events + 4 events
    // per level.
    let mut wa = reg.write_max(a, 2);
    let mut wb = reg.write_max(b, 3);

    advance(&mut mem, a, &mut wa, 2 + 4 + 3); // A: through root-level reads (holds max 2)
    advance(&mut mem, b, &mut wb, 2 + 4 + 3); // B: same (holds max 3; TR-root is 3 now)
    advance(&mut mem, a, &mut wa, 1); // A's root CAS installs 2
    assert!(wa.is_done());
    advance(&mut mem, b, &mut wb, 1); // B's root CAS fails; single-CAS gives up
    assert!(
        wb.is_done(),
        "single-CAS variant completes after one failure"
    );

    let mut rd = reg.read_max();
    finish(&mut mem, a, &mut rd);
    let seen = rd.result().unwrap();
    assert_eq!(seen, 2, "the completed WriteMax(3) was lost");

    // The history checker flags it.
    let mut h = History::new();
    h.push(OpRecord {
        pid: a,
        desc: OpDesc::WriteMax(2),
        invoke: 0,
        response: Some(9),
        output: Some(OpOutput::Unit),
        steps: 10,
    });
    h.push(OpRecord {
        pid: b,
        desc: OpDesc::WriteMax(3),
        invoke: 1,
        response: Some(10),
        output: Some(OpOutput::Unit),
        steps: 10,
    });
    h.push(OpRecord {
        pid: a,
        desc: OpDesc::ReadMax,
        invoke: 11,
        response: Some(12),
        output: Some(OpOutput::Value(seen)),
        steps: 1,
    });
    let violation = check_max_register(&h, 0).unwrap_err();
    assert_eq!(violation.kind, ViolationKind::StaleRead);
}

/// The same adversarial schedule against the REAL register: the second
/// CAS attempt (Lemma 9) repairs the race and the root ends at 3.
#[test]
fn double_cas_survives_the_same_schedule() {
    let mut mem = Memory::new();
    let reg = SimTreeMaxRegister::new(&mut mem, 2);
    let a = ProcessId(0);
    let b = ProcessId(1);
    // Real machine: 2 leaf events + 8 events per level (two attempts of
    // read node / read left / read right / CAS).
    let mut wa = reg.write_max(a, 2);
    let mut wb = reg.write_max(b, 3);

    advance(&mut mem, a, &mut wa, 2 + 8 + 3); // A: root-level attempt-1 reads done
    advance(&mut mem, b, &mut wb, 2 + 8 + 3); // B: likewise (holds 3)
    advance(&mut mem, a, &mut wa, 1); // A installs 2 at the root
    advance(&mut mem, b, &mut wb, 1); // B's first root CAS fails...
    assert!(!wb.is_done(), "the real algorithm retries");
    finish(&mut mem, b, &mut wb); // ...second attempt installs 3
    finish(&mut mem, a, &mut wa);

    let mut rd = reg.read_max(a);
    finish(&mut mem, a, &mut rd);
    assert_eq!(rd.result().unwrap(), 3, "double CAS preserves the maximum");
}

/// A writer that stalls forever mid-propagation does not block others,
/// and its leaf value is *helped* to the root by later writers passing
/// through the same subtree (the max(children) computation carries it).
#[test]
fn stalled_writer_is_helped_by_later_writers() {
    let mut mem = Memory::new();
    let reg = SimTreeMaxRegister::new(&mut mem, 2);
    let a = ProcessId(0);
    let b = ProcessId(1);

    // A writes 100 into its TR leaf, then stalls before propagating.
    let mut wa = reg.write_max(a, 100);
    advance(&mut mem, a, &mut wa, 2); // read leaf + write leaf only

    // B's smaller write shares the TR subtree and must carry A's 100 up.
    let mut wb = reg.write_max(b, 50);
    finish(&mut mem, b, &mut wb);

    let mut rd = reg.read_max(b);
    finish(&mut mem, b, &mut rd);
    assert_eq!(
        rd.result().unwrap(),
        100,
        "B's propagation must publish the stalled writer's larger value"
    );
    // A can still finish later without breaking anything.
    finish(&mut mem, a, &mut wa);
    let mut rd2 = reg.read_max(a);
    finish(&mut mem, a, &mut rd2);
    assert_eq!(rd2.result().unwrap(), 100);
}

/// The PAPER'S LITERAL pseudo-code ("if value ≤ old_value then return",
/// line 16 of Algorithm A) is unsound on shared TL value-leaves: if the
/// first writer of `v` stalls after the leaf store but before
/// propagating, a second `WriteMax(v)` returns after a single read —
/// completing an operation that no subsequent `ReadMax` reflects. Our
/// implementation deviates by *helping* (propagating) on that path; this
/// test keeps the literal variant around and shows the resulting history
/// is rejected by the checker. See DESIGN.md ("Deviations").
#[test]
fn literal_early_return_is_not_linearizable() {
    let mut mem = Memory::new();
    // The literal variant: reuse the broken-machine scaffolding but with
    // the paper's double CAS — the fault under test is ONLY the early
    // return, which `BrokenTreeWrite` shares with the paper's listing.
    let reg = BrokenTreeWrite::new(&mut mem, 4);
    let a = ProcessId(0);
    let b = ProcessId(1);

    // A writes v = 2 (TL value leaf) and stalls right after the leaf
    // store, before any propagation.
    let mut wa = reg.write_max(a, 2);
    advance(&mut mem, a, &mut wa, 2);

    // B's WriteMax(2) hits the leaf already holding 2 and returns after
    // one read — a COMPLETED WriteMax(2).
    let mut wb = reg.write_max(b, 2);
    let steps = finish(&mut mem, b, &mut wb);
    assert_eq!(steps, 1, "literal early return completes after one read");

    // A reader now sees 0: B's completed write is invisible.
    let mut rd = reg.read_max();
    finish(&mut mem, b, &mut rd);
    let seen = rd.result().unwrap();
    assert_eq!(seen, 0, "the literal pseudo-code loses B's completed write");

    let mut h = History::new();
    h.push(OpRecord {
        pid: b,
        desc: OpDesc::WriteMax(2),
        invoke: 0,
        response: Some(1),
        output: Some(OpOutput::Unit),
        steps: 1,
    });
    h.push(OpRecord {
        pid: b,
        desc: OpDesc::ReadMax,
        invoke: 2,
        response: Some(3),
        output: Some(OpOutput::Value(seen)),
        steps: 1,
    });
    let violation = check_max_register(&h, 0).unwrap_err();
    assert_eq!(violation.kind, ViolationKind::StaleRead);
}

/// With the helping fix, a stalled writer of a *small* value in the B1
/// subtree is covered by a same-value writer, which propagates on the
/// dominated path instead of returning.
#[test]
fn stalled_small_value_writer_is_covered_by_same_value_writer() {
    let mut mem = Memory::new();
    let reg = SimTreeMaxRegister::new(&mut mem, 4);
    let a = ProcessId(0);
    let b = ProcessId(1);

    // Both write v = 2 (same TL value leaf). A stalls after the leaf
    // write; B runs to completion and publishes 2 for both.
    let mut wa = reg.write_max(a, 2);
    advance(&mut mem, a, &mut wa, 2);
    let mut wb = reg.write_max(b, 2);
    finish(&mut mem, b, &mut wb);

    let mut rd = reg.read_max(b);
    finish(&mut mem, b, &mut rd);
    assert_eq!(rd.result().unwrap(), 2);
    finish(&mut mem, a, &mut wa);
    let mut rd2 = reg.read_max(a);
    finish(&mut mem, a, &mut rd2);
    assert_eq!(rd2.result().unwrap(), 2);
}

/// Crash-during-propagation sweep for the f-array counter: each process
/// in turn is crashed after its `k`-th event for every `k`, under several
/// schedules. A crash between the leaf increment and the last partial-sum
/// CAS leaves the tree torn mid-propagation; the completion rule must
/// cover every resulting history (the pending increment may be counted
/// or dropped, completed increments never lost).
///
/// The sweep rides the scenario engine: one declarative spec (the
/// `Alternate` mix at two ops per process is exactly increment-then-read)
/// plus an explicit crash plan per (pid, k), driven by `run_sim_seed`.
#[test]
fn farray_counter_survives_a_crash_after_every_propagation_step() {
    let n = 3;
    let mut pending_seen = 0usize;
    let mut spec = ScenarioSpec::new(
        "farray-crash-sweep",
        Family::Counter,
        "farray",
        EngineKind::Sim,
        n,
    );
    spec.ops_per_process = 2;
    spec.mix = OpMix::Alternate;
    for crash_pid in 0..n {
        for k in 1..=10usize {
            spec.faults = Some(FaultSpec::Explicit {
                crashes: vec![CrashAt {
                    pid: crash_pid,
                    after: k,
                }],
            });
            for seed in 0..4u64 {
                let plan = FaultPlan::new().crash(ProcessId(crash_pid), k);
                let run = run_sim_seed(&spec, seed, &plan).unwrap();
                if let Some(v) = &run.violation {
                    panic!("crash p{crash_pid} after {k} events, seed {seed}: {v}");
                }
                let pending: Vec<_> = run.outcome.history.pending().collect();
                if let Some(p) = pending.first() {
                    assert_eq!(p.pid, ProcessId(crash_pid));
                    pending_seen += 1;
                }
            }
        }
    }
    assert!(
        pending_seen > 0,
        "the sweep must hit crash points that leave a pending op"
    );
}

/// The same sweep for the double-collect snapshot: crash the updater
/// between its seq-read and its segment write (torn update, invisible),
/// after the write (visible but pending), and crash the scanner anywhere
/// inside a collect. Every history must satisfy the snapshot checker
/// with the pending ops left in place.
#[test]
fn double_collect_snapshot_survives_a_crash_at_every_update_point() {
    let n = 3;
    let mut pending_updates = 0usize;
    for crash_pid in 0..n {
        for k in 1..=8usize {
            for seed in 0..4u64 {
                let spec = ScenarioSpec::new(
                    "dc-crash-sweep",
                    Family::Snapshot,
                    "double_collect",
                    EngineKind::Sim,
                    n,
                );
                let (mut mem, obj) = build_sim_object(&spec).unwrap();
                let SimObject::Snapshot(snap) = obj else {
                    panic!("registry built the wrong face");
                };
                let mut w = WorkloadBuilder::new(n);
                for p in 0..n {
                    let pid = ProcessId(p);
                    for i in 0..2u64 {
                        let v = p as u64 * 100 + i + 1;
                        let s = Arc::clone(&snap);
                        w.op(
                            pid,
                            OpSpec::update(OpDesc::Update(v as i64), move || s.update(pid, v)),
                        );
                    }
                    let s = Arc::clone(&snap);
                    let s2 = Arc::clone(&snap);
                    w.op(
                        pid,
                        OpSpec::vector(
                            OpDesc::Scan,
                            move || s.scan(pid),
                            move |token| {
                                s2.take_scan_result(token)
                                    .into_iter()
                                    .map(|v| v as i64)
                                    .collect()
                            },
                        ),
                    );
                }
                let plan = FaultPlan::new().crash(ProcessId(crash_pid), k);
                // Budget guards against scan livelock among the survivors;
                // generous enough that it never triggers here.
                let outcome = Executor::with_step_budget(100_000).run_with_faults(
                    &mut mem,
                    w,
                    &mut RandomScheduler::new(seed),
                    &plan,
                );
                check_snapshot(&outcome.history, n, 0).unwrap_or_else(|v| {
                    panic!("crash p{crash_pid} after {k} events, seed {seed}: {v}")
                });
                for p in outcome.history.pending() {
                    assert_eq!(p.pid, ProcessId(crash_pid));
                    if p.desc.is_update() {
                        pending_updates += 1;
                    }
                }
            }
        }
    }
    assert!(
        pending_updates > 0,
        "the sweep must leave some updates pending mid-write"
    );
}
