//! Cross-implementation equivalence: every implementation of an object
//! family must agree with the sequential specification — and therefore
//! with each other — on arbitrary sequential operation streams, both in
//! the real-atomics world and in the simulator.

use std::sync::Arc;

use ruo::sim::SplitMix64;

use ruo::core::counter::sim::{SimAacCounter, SimCasLoopCounter, SimCounter, SimFArrayCounter};
use ruo::core::counter::{AacCounter, FArrayCounter, FetchAddCounter};
use ruo::core::maxreg::sim::{
    SimAacMaxRegister, SimCasRetryMaxRegister, SimMaxRegister, SimTreeMaxRegister,
};
use ruo::core::maxreg::{
    AacMaxRegister, CasRetryMaxRegister, FArrayMaxRegister, LockMaxRegister, TreeMaxRegister,
};
use ruo::core::reduction::CounterFromSnapshot;
use ruo::core::snapshot::{AfekSnapshot, DoubleCollectSnapshot, PathCopySnapshot};
use ruo::core::{Counter, MaxRegister, Snapshot};
use ruo::sim::{Memory, ProcessId};

fn run_sim_solo(mem: &mut Memory, pid: ProcessId, mut m: ruo::sim::Machine) -> i64 {
    while let Some(prim) = m.enabled() {
        let resp = mem.apply(pid, prim);
        m.feed(resp);
    }
    m.result().unwrap()
}

#[test]
fn all_max_registers_agree_on_random_sequential_streams() {
    let mut rng = SplitMix64::new(2014);
    for _case in 0..50 {
        let n = 1 + rng.gen_index(6);
        let cap = 1u64 << (3 + rng.gen_below(8));
        let tree = TreeMaxRegister::new(n);
        let aac = AacMaxRegister::new(cap);
        let cas = CasRetryMaxRegister::new();
        let lock = LockMaxRegister::new();
        let farray = FArrayMaxRegister::new(n);
        let mut mem = Memory::new();
        let sim_tree = SimTreeMaxRegister::new(&mut mem, n);
        let sim_aac = SimAacMaxRegister::new(&mut mem, n, cap);
        let sim_cas = SimCasRetryMaxRegister::new(&mut mem, n);
        let mut expected = 0u64;
        for _op in 0..40 {
            let pid = ProcessId(rng.gen_index(n));
            if rng.gen_bool(0.6) {
                let v = rng.gen_below(cap);
                expected = expected.max(v);
                tree.write_max(pid, v);
                aac.write_max(pid, v);
                cas.write_max(pid, v);
                lock.write_max(pid, v);
                farray.write_max(pid, v);
                run_sim_solo(&mut mem, pid, sim_tree.write_max(pid, v));
                run_sim_solo(&mut mem, pid, sim_aac.write_max(pid, v));
                run_sim_solo(&mut mem, pid, sim_cas.write_max(pid, v));
            } else {
                assert_eq!(tree.read_max(), expected, "TreeMaxRegister");
                assert_eq!(aac.read_max(), expected, "AacMaxRegister");
                assert_eq!(cas.read_max(), expected, "CasRetryMaxRegister");
                assert_eq!(lock.read_max(), expected, "LockMaxRegister");
                assert_eq!(farray.read_max(), expected, "FArrayMaxRegister");
                assert_eq!(
                    run_sim_solo(&mut mem, pid, sim_tree.read_max(pid)) as u64,
                    expected,
                    "SimTreeMaxRegister"
                );
                assert_eq!(
                    run_sim_solo(&mut mem, pid, sim_aac.read_max(pid)) as u64,
                    expected,
                    "SimAacMaxRegister"
                );
                assert_eq!(
                    run_sim_solo(&mut mem, pid, sim_cas.read_max(pid)) as u64,
                    expected,
                    "SimCasRetryMaxRegister"
                );
            }
        }
    }
}

#[test]
fn all_counters_agree_on_random_sequential_streams() {
    let mut rng = SplitMix64::new(7);
    for _case in 0..40 {
        let n = 1 + rng.gen_index(6);
        let farray = FArrayCounter::new(n);
        let aac = AacCounter::new(n, 100);
        let fa = FetchAddCounter::new();
        let red = CounterFromSnapshot::new(DoubleCollectSnapshot::new(n));
        let mut mem = Memory::new();
        let sim_farray = SimFArrayCounter::new(&mut mem, n);
        let sim_aac = SimAacCounter::new(&mut mem, n, 100);
        let sim_cas = SimCasLoopCounter::new(&mut mem, n);
        let mut expected = 0u64;
        for _op in 0..50 {
            let pid = ProcessId(rng.gen_index(n));
            if rng.gen_bool(0.6) {
                expected += 1;
                farray.increment(pid);
                aac.increment(pid);
                fa.increment(pid);
                red.increment(pid);
                run_sim_solo(&mut mem, pid, sim_farray.increment(pid));
                run_sim_solo(&mut mem, pid, sim_aac.increment(pid));
                run_sim_solo(&mut mem, pid, sim_cas.increment(pid));
            } else {
                assert_eq!(farray.read(), expected, "FArrayCounter");
                assert_eq!(aac.read(), expected, "AacCounter");
                assert_eq!(fa.read(), expected, "FetchAddCounter");
                assert_eq!(red.read(), expected, "CounterFromSnapshot");
                assert_eq!(
                    run_sim_solo(&mut mem, pid, sim_farray.read(pid)) as u64,
                    expected,
                    "SimFArrayCounter"
                );
                assert_eq!(
                    run_sim_solo(&mut mem, pid, sim_aac.read(pid)) as u64,
                    expected,
                    "SimAacCounter"
                );
                assert_eq!(
                    run_sim_solo(&mut mem, pid, sim_cas.read(pid)) as u64,
                    expected,
                    "SimCasLoopCounter"
                );
            }
        }
    }
}

#[test]
fn all_snapshots_agree_on_random_sequential_streams() {
    let mut rng = SplitMix64::new(42);
    for _case in 0..40 {
        let n = 1 + rng.gen_index(5);
        let dc = DoubleCollectSnapshot::new(n);
        let afek = AfekSnapshot::new(n);
        let pc = PathCopySnapshot::new(n, 200);
        let mut expected = vec![0u64; n];
        for _op in 0..60 {
            let pid = ProcessId(rng.gen_index(n));
            if rng.gen_bool(0.6) {
                let v = rng.gen_below(1_000_000);
                expected[pid.index()] = v;
                dc.update(pid, v);
                afek.update(pid, v);
                pc.update(pid, v);
            } else {
                assert_eq!(dc.scan(), expected, "DoubleCollectSnapshot");
                assert_eq!(afek.scan(), expected, "AfekSnapshot");
                assert_eq!(pc.scan(), expected, "PathCopySnapshot");
                // Views agree with scans.
                let view = pc.view();
                for (i, &e) in expected.iter().enumerate() {
                    assert_eq!(view.get(i), e, "SnapshotView");
                }
            }
        }
    }
}

/// Sim machines driven by an interleaving scheduler must agree with the
/// real implementations at quiescence.
#[test]
fn sim_and_real_tree_registers_converge_identically() {
    let mut rng = SplitMix64::new(99);
    for _case in 0..20 {
        let n = 4;
        let real = Arc::new(TreeMaxRegister::new(n));
        let mut mem = Memory::new();
        let sim = SimTreeMaxRegister::new(&mut mem, n);
        // Concurrent-ish sim run: interleave four write machines randomly.
        let values: Vec<u64> = (0..n).map(|_| 1 + rng.gen_below(9_999)).collect();
        let mut machines: Vec<_> = (0..n)
            .map(|i| (ProcessId(i), sim.write_max(ProcessId(i), values[i])))
            .collect();
        while machines.iter().any(|(_, m)| !m.is_done()) {
            let alive: Vec<usize> = machines
                .iter()
                .enumerate()
                .filter(|(_, (_, m))| !m.is_done())
                .map(|(i, _)| i)
                .collect();
            let pick = alive[rng.gen_index(alive.len())];
            let (pid, m) = &mut machines[pick];
            let prim = m.enabled().unwrap();
            let resp = mem.apply(*pid, prim);
            m.feed(resp);
        }
        for (i, &v) in values.iter().enumerate() {
            real.write_max(ProcessId(i), v);
        }
        let sim_result = run_sim_solo(&mut mem, ProcessId(0), sim.read_max(ProcessId(0))) as u64;
        assert_eq!(sim_result, real.read_max());
        assert_eq!(sim_result, *values.iter().max().unwrap());
    }
}
