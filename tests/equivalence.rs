//! Cross-implementation equivalence: every implementation of an object
//! family must agree with the sequential specification — and therefore
//! with each other — on arbitrary sequential operation streams, both in
//! the real-atomics world and in the simulator.
//!
//! Since the scenario-engine refactor the implementations under test
//! come from the scenario registry: any newly registered implementation
//! is swept automatically, and `registry_completeness.rs` (in the
//! scenario crate) fails if a core implementation is missing from the
//! registry — so nothing can silently escape this test.

use std::sync::Arc;

use ruo::scenario::{registry, BuildParams, Family, ImplEntry, RealObject, SimObject};
use ruo::sim::{run_solo, Memory, ProcessId, SplitMix64};

use ruo::core::maxreg::sim::{SimMaxRegister, SimTreeMaxRegister};
use ruo::core::maxreg::TreeMaxRegister;
use ruo::core::snapshot::PathCopySnapshot;
use ruo::core::{MaxRegister, Snapshot};

/// Every registry face of `family`, built fresh: `(label, real)` and
/// `(label, sim)` lists plus the shared memory the sim faces live in.
struct Faces {
    real: Vec<(String, RealObject)>,
    sim: Vec<(String, SimObject)>,
    mem: Memory,
}

fn build_faces(family: Family, p: &BuildParams) -> Faces {
    let mut faces = Faces {
        real: Vec::new(),
        sim: Vec::new(),
        mem: Memory::new(),
    };
    let label = |e: &ImplEntry, face: &str| format!("{}/{} ({face})", e.family, e.id);
    for entry in registry().iter().filter(|e| e.family == family) {
        if entry.has_real() {
            faces
                .real
                .push((label(entry, "real"), entry.build_real(p).unwrap()));
        }
        if entry.has_sim() {
            faces.sim.push((
                label(entry, "sim"),
                entry.build_sim(&mut faces.mem, p).unwrap(),
            ));
        }
    }
    faces
}

fn solo(mem: &mut Memory, pid: ProcessId, m: ruo::sim::Machine) -> i64 {
    run_solo(mem, pid, m).0
}

#[test]
fn all_max_registers_agree_on_random_sequential_streams() {
    let mut rng = SplitMix64::new(2014);
    for _case in 0..50 {
        let n = 1 + rng.gen_index(6);
        let cap = 1u64 << (3 + rng.gen_below(8));
        let mut faces = build_faces(
            Family::MaxReg,
            &BuildParams {
                n,
                capacity: cap,
                root_fast_path: false,
                accuracy_k: 1,
            },
        );
        let mut expected = 0u64;
        for _op in 0..40 {
            let pid = ProcessId(rng.gen_index(n));
            if rng.gen_bool(0.6) {
                let v = rng.gen_below(cap);
                expected = expected.max(v);
                for (_, obj) in &faces.real {
                    if let RealObject::MaxReg(r) = obj {
                        r.write_max(pid, v);
                    }
                }
                for (_, obj) in &faces.sim {
                    if let SimObject::MaxReg(r) = obj {
                        solo(&mut faces.mem, pid, r.write_max(pid, v));
                    }
                }
            } else {
                for (name, obj) in &faces.real {
                    if let RealObject::MaxReg(r) = obj {
                        assert_eq!(r.read_max(), expected, "{name}");
                    }
                }
                for (name, obj) in &faces.sim {
                    if let SimObject::MaxReg(r) = obj {
                        assert_eq!(
                            solo(&mut faces.mem, pid, r.read_max(pid)) as u64,
                            expected,
                            "{name}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn all_counters_agree_on_random_sequential_streams() {
    let mut rng = SplitMix64::new(7);
    for _case in 0..40 {
        let n = 1 + rng.gen_index(6);
        let mut faces = build_faces(
            Family::Counter,
            &BuildParams {
                n,
                capacity: 100,
                root_fast_path: false,
                accuracy_k: 1,
            },
        );
        let mut expected = 0u64;
        for _op in 0..50 {
            let pid = ProcessId(rng.gen_index(n));
            if rng.gen_bool(0.6) {
                expected += 1;
                for (_, obj) in &faces.real {
                    if let RealObject::Counter(c) = obj {
                        c.increment(pid);
                    }
                }
                for (_, obj) in &faces.sim {
                    if let SimObject::Counter(c) = obj {
                        solo(&mut faces.mem, pid, c.increment(pid));
                    }
                }
            } else {
                for (name, obj) in &faces.real {
                    if let RealObject::Counter(c) = obj {
                        assert_eq!(c.read(), expected, "{name}");
                    }
                }
                for (name, obj) in &faces.sim {
                    if let SimObject::Counter(c) = obj {
                        assert_eq!(
                            solo(&mut faces.mem, pid, c.read(pid)) as u64,
                            expected,
                            "{name}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn all_snapshots_agree_on_random_sequential_streams() {
    let mut rng = SplitMix64::new(42);
    for _case in 0..40 {
        let n = 1 + rng.gen_index(5);
        let mut faces = build_faces(
            Family::Snapshot,
            &BuildParams {
                n,
                capacity: 200,
                root_fast_path: false,
                accuracy_k: 1,
            },
        );
        // The path-copy view accessor is outside the `Snapshot` trait;
        // keep one direct instance so views stay covered.
        let pc = PathCopySnapshot::new(n, 200);
        let mut expected = vec![0u64; n];
        for _op in 0..60 {
            let pid = ProcessId(rng.gen_index(n));
            if rng.gen_bool(0.6) {
                let v = rng.gen_below(1_000_000);
                expected[pid.index()] = v;
                pc.update(pid, v);
                for (_, obj) in &faces.real {
                    if let RealObject::Snapshot(s) = obj {
                        s.update(pid, v);
                    }
                }
                for (_, obj) in &faces.sim {
                    if let SimObject::Snapshot(s) = obj {
                        solo(&mut faces.mem, pid, s.update(pid, v));
                    }
                }
            } else {
                for (name, obj) in &faces.real {
                    if let RealObject::Snapshot(s) = obj {
                        assert_eq!(s.scan(), expected, "{name}");
                    }
                }
                for (name, obj) in &faces.sim {
                    if let SimObject::Snapshot(s) = obj {
                        let token = solo(&mut faces.mem, pid, s.scan(pid));
                        assert_eq!(s.take_scan_result(token), expected, "{name}");
                    }
                }
                let view = pc.view();
                for (i, &e) in expected.iter().enumerate() {
                    assert_eq!(view.get(i), e, "SnapshotView");
                }
            }
        }
    }
}

/// Sim machines driven by an interleaving scheduler must agree with the
/// real implementations at quiescence.
#[test]
fn sim_and_real_tree_registers_converge_identically() {
    let mut rng = SplitMix64::new(99);
    for _case in 0..20 {
        let n = 4;
        let real = Arc::new(TreeMaxRegister::new(n));
        let mut mem = Memory::new();
        let sim = SimTreeMaxRegister::new(&mut mem, n);
        // Concurrent-ish sim run: interleave four write machines randomly.
        let values: Vec<u64> = (0..n).map(|_| 1 + rng.gen_below(9_999)).collect();
        let mut machines: Vec<_> = (0..n)
            .map(|i| (ProcessId(i), sim.write_max(ProcessId(i), values[i])))
            .collect();
        while machines.iter().any(|(_, m)| !m.is_done()) {
            let alive: Vec<usize> = machines
                .iter()
                .enumerate()
                .filter(|(_, (_, m))| !m.is_done())
                .map(|(i, _)| i)
                .collect();
            let pick = alive[rng.gen_index(alive.len())];
            let (pid, m) = &mut machines[pick];
            let prim = m.enabled().unwrap();
            let resp = mem.apply(*pid, prim);
            m.feed(resp);
        }
        for (i, &v) in values.iter().enumerate() {
            real.write_max(ProcessId(i), v);
        }
        let sim_result = solo(&mut mem, ProcessId(0), sim.read_max(ProcessId(0))) as u64;
        assert_eq!(sim_result, real.read_max());
        assert_eq!(sim_result, *values.iter().max().unwrap());
    }
}
