//! Corollary 1's counter-from-snapshot reduction, exercised across all
//! snapshot implementations under real concurrency — this is how the
//! paper transports the counter lower bound to snapshots, so the
//! adapter must be a correct counter over any correct snapshot.

use std::sync::Arc;

use ruo::core::reduction::CounterFromSnapshot;
use ruo::core::snapshot::{AfekSnapshot, DoubleCollectSnapshot, PathCopySnapshot};
use ruo::core::{Counter, Snapshot};
use ruo::sim::ProcessId;

fn hammer<S: Snapshot + 'static>(snap: S, threads: usize, per: u64) {
    let counter = Arc::new(CounterFromSnapshot::new(snap));
    std::thread::scope(|s| {
        for t in 0..threads {
            let counter = Arc::clone(&counter);
            s.spawn(move || {
                let mut last = 0;
                for i in 0..per {
                    counter.increment(ProcessId(t));
                    if i % 16 == 0 {
                        let v = counter.read();
                        assert!(v >= last, "count regressed");
                        assert!(v <= threads as u64 * per, "overcount");
                        last = v;
                    }
                }
            });
        }
    });
    assert_eq!(counter.read(), threads as u64 * per);
}

#[test]
fn counter_from_double_collect_is_exact() {
    hammer(DoubleCollectSnapshot::new(4), 4, 500);
}

#[test]
fn counter_from_afek_is_exact() {
    hammer(AfekSnapshot::new(4), 4, 300);
}

#[test]
fn counter_from_path_copy_is_exact() {
    hammer(PathCopySnapshot::new(4, 4 * 500 + 1), 4, 500);
}

#[test]
fn reduction_uses_one_update_per_increment() {
    // The paper's reduction: CounterIncrement = exactly one Update.
    let snap = PathCopySnapshot::new(2, 100);
    let counter = CounterFromSnapshot::new(snap);
    for i in 1..=10u64 {
        counter.increment(ProcessId(0));
        assert_eq!(counter.snapshot().updates(), i);
    }
    assert_eq!(counter.read(), 10);
}
