//! Linearizability of the real-atomics implementations under genuine
//! hardware concurrency (experiment T5, real-thread half).
//!
//! Threads time-stamp each operation's invocation and response with
//! [`ThreadRecorder`]'s shared tick counter; the recorded histories are checked
//! with the same sound checkers the simulator histories go through. Any
//! violation these checkers report is a real linearizability bug.

use ruo::core::counter::{
    AacCounter, CombiningCounter, CounterMode, FArrayCounter, FetchAddCounter, ShardedCounter,
};
use ruo::core::maxreg::{
    AacMaxRegister, CasRetryMaxRegister, FArrayMaxRegister, LockMaxRegister, TreeMaxRegister,
};
use ruo::core::snapshot::{AfekSnapshot, DoubleCollectSnapshot, PathCopySnapshot};
use ruo::core::{Counter, MaxRegister, Snapshot};
use ruo::sim::history::{OpDesc, OpOutput};
use ruo::sim::lin::{check_counter, check_max_register, check_snapshot};
use ruo::sim::recorder::ThreadRecorder;
use ruo::sim::ProcessId;

fn exercise_maxreg<R: MaxRegister>(reg: &R, name: &str) {
    let rec = ThreadRecorder::new();
    let threads = 4;
    let ops = 300u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let rec = &rec;
            s.spawn(move || {
                let pid = ProcessId(t);
                for i in 0..ops {
                    if i % 3 == 2 {
                        rec.record(pid, OpDesc::ReadMax, || {
                            let v = reg.read_max();
                            OpOutput::Value(v as i64)
                        });
                    } else {
                        let v = i * threads as u64 + t as u64 + 1;
                        rec.record(pid, OpDesc::WriteMax(v as i64), || {
                            reg.write_max(pid, v);
                            OpOutput::Unit
                        });
                    }
                }
            });
        }
    });
    let history = rec.history();
    check_max_register(&history, 0).unwrap_or_else(|v| panic!("{name}: {v}"));
}

#[test]
fn tree_max_register_threads_are_linearizable() {
    exercise_maxreg(&TreeMaxRegister::new(4), "TreeMaxRegister");
}

#[test]
fn aac_max_register_threads_are_linearizable() {
    exercise_maxreg(&AacMaxRegister::new(1 << 12), "AacMaxRegister");
}

#[test]
fn cas_retry_max_register_threads_are_linearizable() {
    exercise_maxreg(&CasRetryMaxRegister::new(), "CasRetryMaxRegister");
}

#[test]
fn lock_max_register_threads_are_linearizable() {
    exercise_maxreg(&LockMaxRegister::new(), "LockMaxRegister");
}

#[test]
fn farray_max_register_threads_are_linearizable() {
    exercise_maxreg(&FArrayMaxRegister::new(4), "FArrayMaxRegister");
}

/// Contended stress config: more threads than the 4-thread smoke runs,
/// with a mix of deliberately dominated writes (small values that hit
/// the O(1) root fast path long after larger maxima land) and fresh
/// maxima. This is the workload where an unsound early return would
/// lose a completed write.
fn exercise_maxreg_contended<R: MaxRegister>(reg: &R, name: &str) {
    let rec = ThreadRecorder::new();
    let threads = 8;
    let ops = 400u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let rec = &rec;
            s.spawn(move || {
                let pid = ProcessId(t);
                for i in 0..ops {
                    match i % 4 {
                        0 => {
                            // Fresh maximum: strictly growing across the run.
                            let v = i * threads as u64 + t as u64 + 1;
                            rec.record(pid, OpDesc::WriteMax(v as i64), || {
                                reg.write_max(pid, v);
                                OpOutput::Unit
                            });
                        }
                        1 | 2 => {
                            // Dominated write: bounded by the values the
                            // `i % 4 == 0` branch wrote many rounds ago,
                            // so under contention it almost always sees
                            // `root >= v` and returns via the fast path.
                            let v = (i / 4) * threads as u64 + 1;
                            rec.record(pid, OpDesc::WriteMax(v as i64), || {
                                reg.write_max(pid, v);
                                OpOutput::Unit
                            });
                        }
                        _ => {
                            rec.record(pid, OpDesc::ReadMax, || {
                                let v = reg.read_max();
                                OpOutput::Value(v as i64)
                            });
                        }
                    }
                }
            });
        }
    });
    let history = rec.history();
    check_max_register(&history, 0).unwrap_or_else(|v| panic!("{name}: {v}"));
}

#[test]
fn tree_max_register_contended_mixed_writes_are_linearizable() {
    exercise_maxreg_contended(&TreeMaxRegister::new(8), "TreeMaxRegister/contended");
}

#[test]
fn elimination_tree_max_register_threads_are_linearizable() {
    exercise_maxreg(
        &TreeMaxRegister::with_elimination(4),
        "TreeMaxRegister+elim",
    );
}

#[test]
fn elimination_tree_max_register_contended_mixed_writes_are_linearizable() {
    // The dominated-write mix is exactly the regime the per-level
    // elimination scan targets: most writes stop at an interior node
    // and run only the partial upward climb. An unsound early return
    // (skipping the climb past a stalled cover) would surface here as a
    // lost maximum.
    exercise_maxreg_contended(
        &TreeMaxRegister::with_elimination(8),
        "TreeMaxRegister+elim/contended",
    );
}

#[test]
fn farray_max_register_contended_mixed_writes_are_linearizable() {
    exercise_maxreg_contended(&FArrayMaxRegister::new(8), "FArrayMaxRegister/contended");
}

#[test]
fn cas_retry_max_register_contended_mixed_writes_are_linearizable() {
    exercise_maxreg_contended(&CasRetryMaxRegister::new(), "CasRetryMaxRegister/contended");
}

fn exercise_counter<C: Counter>(counter: &C, name: &str) {
    let rec = ThreadRecorder::new();
    let threads = 4;
    let ops = 300u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let rec = &rec;
            s.spawn(move || {
                let pid = ProcessId(t);
                for i in 0..ops {
                    if i % 3 == 2 {
                        rec.record(pid, OpDesc::CounterRead, || {
                            let v = counter.read();
                            OpOutput::Value(v as i64)
                        });
                    } else {
                        rec.record(pid, OpDesc::CounterIncrement, || {
                            counter.increment(pid);
                            OpOutput::Unit
                        });
                    }
                }
            });
        }
    });
    let history = rec.history();
    check_counter(&history).unwrap_or_else(|v| panic!("{name}: {v}"));
}

/// Contended counter stress: 8 threads, write-heavy (3 increments per
/// read), the regime where the combining front-end actually forms
/// multi-request batches and the sharded reads must merge in-flight
/// stripes. A combiner publishing `serviced` before the batch reaches
/// the root, or a collect that double-counts a stripe, fails the
/// checker here.
fn exercise_counter_contended<C: Counter + ?Sized>(counter: &C, name: &str) {
    let rec = ThreadRecorder::new();
    let threads = 8;
    let ops = 400u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let rec = &rec;
            s.spawn(move || {
                let pid = ProcessId(t);
                for i in 0..ops {
                    if i % 4 == 3 {
                        rec.record(pid, OpDesc::CounterRead, || {
                            let v = counter.read();
                            OpOutput::Value(v as i64)
                        });
                    } else {
                        rec.record(pid, OpDesc::CounterIncrement, || {
                            counter.increment(pid);
                            OpOutput::Unit
                        });
                    }
                }
            });
        }
    });
    let history = rec.history();
    check_counter(&history).unwrap_or_else(|v| panic!("{name}: {v}"));
}

#[test]
fn farray_counter_threads_are_linearizable() {
    exercise_counter(&FArrayCounter::new(4), "FArrayCounter");
}

#[test]
fn combining_counter_threads_are_linearizable() {
    exercise_counter(&CombiningCounter::new(4), "CombiningCounter");
}

#[test]
fn combining_counter_contended_threads_are_linearizable() {
    exercise_counter_contended(&CombiningCounter::new(8), "CombiningCounter/contended");
}

#[test]
fn sharded_counter_threads_are_linearizable() {
    exercise_counter(&ShardedCounter::new(4), "ShardedCounter");
}

#[test]
fn sharded_counter_contended_threads_are_linearizable() {
    exercise_counter_contended(&ShardedCounter::new(8), "ShardedCounter/contended");
}

#[test]
fn farray_counter_contended_threads_are_linearizable() {
    // Baseline for the two front-ends: the exact counter under the same
    // 8-thread write-heavy mix.
    exercise_counter_contended(&FArrayCounter::new(8), "FArrayCounter/contended");
}

#[test]
fn every_counter_mode_is_linearizable_through_the_boxed_knob() {
    for mode in CounterMode::all() {
        let counter = ruo::core::counter::with_mode(mode, 8);
        exercise_counter_contended(&*counter, &format!("with_mode({mode})"));
    }
}

#[test]
fn aac_counter_threads_are_linearizable() {
    exercise_counter(&AacCounter::new(4, 1200), "AacCounter");
}

#[test]
fn fetch_add_counter_threads_are_linearizable() {
    exercise_counter(&FetchAddCounter::new(), "FetchAddCounter");
}

fn exercise_snapshot<S: Snapshot>(snap: &S, name: &str) {
    let rec = ThreadRecorder::new();
    let threads = snap.n();
    let ops = 150u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let rec = &rec;
            s.spawn(move || {
                let pid = ProcessId(t);
                for i in 0..ops {
                    if i % 2 == 0 {
                        // Distinct values per process.
                        let v = t as u64 * 10_000 + i + 1;
                        rec.record(pid, OpDesc::Update(v as i64), || {
                            snap.update(pid, v);
                            OpOutput::Unit
                        });
                    } else {
                        rec.record(pid, OpDesc::Scan, || {
                            let v: Vec<i64> = snap.scan().iter().map(|&x| x as i64).collect();
                            OpOutput::Vector(v)
                        });
                    }
                }
            });
        }
    });
    let history = rec.history();
    check_snapshot(&history, threads, 0).unwrap_or_else(|v| panic!("{name}: {v}"));
}

#[test]
fn double_collect_snapshot_threads_are_linearizable() {
    exercise_snapshot(&DoubleCollectSnapshot::new(3), "DoubleCollectSnapshot");
}

#[test]
fn afek_snapshot_threads_are_linearizable() {
    exercise_snapshot(&AfekSnapshot::new(3), "AfekSnapshot");
}

#[test]
fn path_copy_snapshot_threads_are_linearizable() {
    exercise_snapshot(&PathCopySnapshot::new(3, 10_000), "PathCopySnapshot");
}
