//! Exhaustive crash-tolerance proofs: bounded exploration over schedules
//! *with crash points* ([`ExploreConfig::max_crashes`]).
//!
//! Where `tests/failure_injection.rs` drives hand-crafted crash
//! schedules, these tests enumerate **every** schedule with up to one
//! crash inside the scope:
//!
//! * double-CAS Algorithm A survives every 1-crash schedule at `N = 4`
//!   (the crashed writer's value may or may not be visible — the
//!   completion rule — but no completed write is ever lost and reads
//!   stay monotone);
//! * the deliberately weakened single-CAS variant is caught
//!   automatically under the same crash exploration, with the fast
//!   checkers handling the pending operations crashes produce;
//! * sleep-set pruning remains sound in the presence of crash branches:
//!   the pruned and unpruned searches agree on the set of history
//!   classes.

use std::sync::Arc;

use ruo::core::maxreg::sim::{SimMaxRegister, SimTreeMaxRegister};
use ruo::core::shape::AlgorithmATree;
use ruo::metrics::ExploreGauges;
use ruo::scenario::{
    explore_parts, EngineKind, ExploreSpec, Family, OpKind, ScenarioOp, ScenarioSpec,
};
use ruo::sim::explore::{explore, ExploreConfig, ExploreOp};
use ruo::sim::lin::{check_exact, check_max_register};
use ruo::sim::spec::SeqSpec;
use ruo::sim::{
    cas, done, read, write, History, Machine, Memory, ObjId, OpDesc, ProcessId, Step, Word, NEG_INF,
};

/// The flagship crash-tolerance proof: the scaled `N = 4` scope from
/// `tests/exhaustive.rs` (one 27-step write, two dominated 1-step
/// writes, one read, seeded root of 3), now with a 1-crash budget. The
/// 27-step `WriteMax(4)` can crash after any of its events — mid leaf
/// write, between the two CASes of a level, after the root CAS — and in
/// every resulting schedule the fast checker must accept: the pending
/// write may be visible or not, but completed writes are never lost and
/// reads never go backwards.
#[test]
fn double_cas_survives_every_one_crash_schedule_at_n4() {
    // The scope is the declarative W5 spec with a 1-crash budget; the
    // scenario engine supplies the setup closure and op descriptors,
    // and the test layers its crash-accounting checker on top.
    let mut spec = ScenarioSpec::new(
        "n4-one-crash",
        Family::MaxReg,
        "tree",
        EngineKind::Explore,
        4,
    );
    spec.root_fast_path = true;
    spec.explore = Some(ExploreSpec {
        seed_update: Some(3),
        ops: vec![
            ScenarioOp {
                pid: 0,
                kind: OpKind::Update,
                value: 4,
            }, // 27 steps: the crash target
            ScenarioOp {
                pid: 1,
                kind: OpKind::Update,
                value: 2,
            }, // dominated: 1 root read
            ScenarioOp {
                pid: 2,
                kind: OpKind::Update,
                value: 3,
            }, // dominated: 1 root read
            ScenarioOp {
                pid: 3,
                kind: OpKind::Read,
                value: 0,
            },
        ],
        max_schedules: 2_000_000,
        prune: true,
        max_crashes: 1,
        workers: 1,
    });
    let parts = explore_parts(&spec).unwrap();
    assert_eq!(parts.initial, 3, "the seed update is the checker's initial");
    let mut crashed_histories = 0usize;
    let summary = explore(
        &*parts.setup,
        &parts.ops,
        &mut |h: &History| {
            let pending: Vec<_> = h.pending().collect();
            assert!(pending.len() <= 1, "crash budget is 1");
            if let Some(p) = pending.first() {
                // Only the 27-step write can crash (the other three ops
                // are single-step, and a crash needs a non-final event).
                assert_eq!(p.desc, OpDesc::WriteMax(4));
                assert!(p.output.is_none());
                crashed_histories += 1;
            }
            check_max_register(h, parts.initial).is_ok()
        },
        ExploreConfig {
            max_schedules: 2_000_000,
            prune: true,
            max_crashes: 1,
        },
    );
    assert!(
        summary.violation.is_none(),
        "1-crash schedule violated Algorithm A: {:?} (crashed: {:?})",
        summary.violation,
        summary.violation_crashed
    );
    assert!(!summary.truncated, "the 1-crash scope must be exhaustive");
    assert!(
        summary.stats.crash_branches > 0 && crashed_histories > 0,
        "crash branches must actually be explored"
    );

    // The crash exploration flows into the metrics layer like any run.
    let gauges = ExploreGauges::new(1);
    gauges.record(ProcessId(0), &summary.stats);
    assert_eq!(gauges.crash_branches(), summary.stats.crash_branches as u64);
    println!(
        "N=4 one-crash proof: {} schedules ({} crash branches, {} with a pending write)",
        summary.schedules, summary.stats.crash_branches, crashed_histories
    );
}

/// The single-CAS variant of Algorithm A, as in
/// `tests/exhaustive.rs::exploration_rediscovers_the_single_cas_bug` —
/// each level does one blind `CAS(node, old, max(children))` instead of
/// the algorithm's double CAS.
mod single_cas {
    use super::*;

    type Levels = Arc<Vec<(ObjId, Option<ObjId>, Option<ObjId>)>>;

    fn level(levels: Levels, i: usize) -> Step {
        if i == levels.len() {
            return done(0);
        }
        let (node, l, r) = levels[i];
        let rd = move |o: Option<ObjId>, k: Box<dyn FnOnce(Word) -> Step + Send>| match o {
            Some(o) => read(o, k),
            None => k(NEG_INF),
        };
        read(node, move |old| {
            rd(
                l,
                Box::new(move |lv| {
                    rd(
                        r,
                        Box::new(move |rv| {
                            cas(node, old, lv.max(rv), move |_| level(levels, i + 1))
                        }),
                    )
                }),
            )
        })
    }

    pub fn broken_write(
        tree: &Arc<AlgorithmATree>,
        cells: &Arc<Vec<ObjId>>,
        pid: usize,
        v: u64,
    ) -> Machine {
        let leaf = tree.leaf_for(pid, v);
        let shape = tree.shape();
        let levels: Levels = Arc::new(
            shape
                .ancestors(leaf)
                .into_iter()
                .map(|a| {
                    let info = shape.node(a);
                    (
                        cells[a],
                        info.left.map(|i| cells[i]),
                        info.right.map(|i| cells[i]),
                    )
                })
                .collect(),
        );
        let leaf_cell = cells[leaf];
        let w = v as Word;
        Machine::new(read(leaf_cell, move |old| {
            if w <= old {
                done(0)
            } else {
                write(leaf_cell, w, move || level(levels, 0))
            }
        }))
    }
}

/// Crash exploration re-finds the single-CAS lost-write bug with no
/// hand-crafted schedule: the same scope as the crash-free rediscovery
/// test, but searched *through* the 1-crash schedule space — so the fast
/// checker digests hundreds of pending-op histories on the way to the
/// violation, with pruning on and off.
#[test]
fn one_crash_exploration_rediscovers_the_single_cas_bug() {
    let setup = || {
        let mut mem = Memory::new();
        let tree = Arc::new(AlgorithmATree::new(2));
        let cells = Arc::new(mem.alloc_n(tree.shape().len(), NEG_INF));
        let root = cells[tree.root()];
        let machines = vec![
            single_cas::broken_write(&tree, &cells, 0, 2),
            single_cas::broken_write(&tree, &cells, 1, 3),
            Machine::new(read(root, |v| done(v.max(0)))),
        ];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(2),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::WriteMax(3),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ];
    for prune in [false, true] {
        let mut pending_seen = 0usize;
        let summary = explore(
            &setup,
            &ops,
            &mut |h: &History| {
                pending_seen += h.pending().count();
                check_max_register(h, 0).is_ok()
            },
            ExploreConfig {
                max_schedules: 4_000_000,
                prune,
                max_crashes: 1,
            },
        );
        let schedule = summary
            .violation
            .unwrap_or_else(|| panic!("prune={prune}: single-CAS bug not found under crashes"));
        assert!(schedule.contains(&ProcessId(0)));
        assert!(schedule.contains(&ProcessId(1)));
        assert!(
            pending_seen > 0,
            "prune={prune}: the search must wade through pending-op histories"
        );
        println!(
            "single-CAS bug under 1-crash exploration (prune={prune}): \
             found after {} schedules, {} crash branches, crashed in violation: {:?}",
            summary.schedules, summary.stats.crash_branches, summary.violation_crashed
        );
    }
}

/// Pruning soundness under crashes, on the real object: the `N = 2`
/// Algorithm A scope (one 10-step write, two 1-step reads) explored with
/// a 1-crash budget, pruned and unpruned. Both searches must accept
/// every history (exact + fast checker agreement) and produce the same
/// set of history classes (outputs, completion flags, precedence).
#[test]
fn crash_pruning_preserves_algorithm_a_history_classes() {
    use std::collections::BTreeSet;

    let setup = || {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, 2);
        let machines = vec![
            reg.write_max(ProcessId(0), 1),
            reg.read_max(ProcessId(1)),
            reg.read_max(ProcessId(2)),
        ];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(1),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ];
    let spec = SeqSpec::MaxRegister { initial: 0 };
    let signature = |h: &History| {
        let by_pid = |pid: ProcessId| {
            h.ops()
                .iter()
                .find(|o| o.pid == pid)
                .expect("one record per process")
        };
        let rows: Vec<String> = ops
            .iter()
            .map(|op| {
                let rec = by_pid(op.pid);
                let row: Vec<bool> = ops
                    .iter()
                    .map(|other| rec.precedes(by_pid(other.pid)))
                    .collect();
                format!("{:?}|{}|{:?}", rec.output, rec.is_complete(), row)
            })
            .collect();
        rows.join(";")
    };
    let run = |prune: bool| {
        let mut classes: BTreeSet<String> = BTreeSet::new();
        let summary = explore(
            &setup,
            &ops,
            &mut |h: &History| {
                classes.insert(signature(h));
                check_exact(h, &spec).is_ok() && check_max_register(h, 0).is_ok()
            },
            ExploreConfig {
                max_schedules: 1_000_000,
                prune,
                max_crashes: 1,
            },
        );
        assert!(
            summary.violation.is_none(),
            "prune={prune}: violation {:?}",
            summary.violation
        );
        assert!(!summary.truncated);
        (classes, summary.schedules)
    };
    let (full, full_n) = run(false);
    let (pruned, pruned_n) = run(true);
    assert!(pruned_n <= full_n, "pruned {pruned_n} vs full {full_n}");
    assert_eq!(
        full, pruned,
        "crash pruning changed the set of Algorithm A history classes"
    );
    // A crash-free run of the same scope enumerates 132 interleavings;
    // the crash budget strictly grows the schedule space.
    assert!(full_n > 132, "crash schedules missing: {full_n}");
    println!("N=2 crash soundness: {full_n} full vs {pruned_n} pruned schedules");
}
