//! Cross-crate integration of the lower-bound adversaries with the
//! algorithm implementations: the paper's counting invariants must hold
//! at moderate scale against every simulated object.

use ruo::core::counter::sim::{SimCasLoopCounter, SimFArrayCounter};
use ruo::core::maxreg::sim::{SimAacMaxRegister, SimTreeMaxRegister};
use ruo::lowerbound::essential::{run_essential, EssentialConfig, StopReason};
use ruo::lowerbound::theorem1::run_theorem1;
use ruo::sim::Memory;

#[test]
fn theorem1_invariants_hold_across_scales() {
    for n in [4usize, 16, 64, 256] {
        let mut mem = Memory::new();
        let c = SimFArrayCounter::new(&mut mem, n);
        let out = run_theorem1(&c, &mut mem, 1_000_000);
        assert!(out.knowledge_bound_held, "N={n}: M(E_j) ≤ 3^j violated");
        assert_eq!(out.reader_value, n as i64 - 1, "N={n}: wrong count");
        assert_eq!(out.reader_awareness, n, "N={n}: Lemma 3 violated");
        assert!(
            out.rounds >= out.predicted_rounds(),
            "N={n}: Theorem 1 lower bound violated: {} < {}",
            out.rounds,
            out.predicted_rounds()
        );
    }
}

#[test]
fn theorem1_tradeoff_product_grows_logarithmically() {
    // The product (read steps) · (increment rounds) must grow at least
    // like log N for any read/write/CAS counter. Check the shape across
    // a 64x range of N for both ends of the tradeoff.
    let measure = |n: usize, cas_loop: bool| -> (usize, usize) {
        let mut mem = Memory::new();
        if cas_loop {
            let c = SimCasLoopCounter::new(&mut mem, n);
            let out = run_theorem1(&c, &mut mem, 1_000_000);
            (out.reader_steps, out.rounds)
        } else {
            let c = SimFArrayCounter::new(&mut mem, n);
            let out = run_theorem1(&c, &mut mem, 1_000_000);
            (out.reader_steps, out.rounds)
        }
    };
    for cas_loop in [false, true] {
        let (r8, u8_) = measure(8, cas_loop);
        let (r512, u512) = measure(512, cas_loop);
        assert!(
            r512 * u512 > r8 * u8_,
            "cas_loop={cas_loop}: tradeoff product did not grow"
        );
        let predicted = ((512.0f64 / r512 as f64).log(3.0)).floor() as usize;
        assert!(
            u512 >= predicted,
            "cas_loop={cas_loop}: below Theorem 1 bound"
        );
    }
}

#[test]
fn essential_construction_invariants_hold_for_algorithm_a() {
    for k in [16usize, 64, 256] {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, k);
        let out = run_essential(&reg, &mut mem, k, EssentialConfig::default());
        assert!(
            out.hidden_invariant_held,
            "K={k}: hidden-set invariant broken"
        );
        assert!(out.replays_faithful, "K={k}: Lemma 2 replay diverged");
        assert!(out.iterations >= 1, "K={k}: construction made no progress");
        assert!(
            out.reader_value >= out.max_completed_value,
            "K={k}: reader missed a completed write"
        );
        // Lemma 4's decay floor.
        for t in &out.trace {
            let floor = (((t.active_before as f64).sqrt() / 3.0) - 2.0).floor();
            assert!(
                t.essential_after as f64 >= floor,
                "K={k} iter {}: essential set decayed below √m/3 − 2",
                t.iteration
            );
        }
    }
}

#[test]
fn essential_construction_respects_read_cost_threshold() {
    // With an artificially large f(K) the construction must stop early
    // with the threshold reason (or run out of set size), never panic.
    let k = 64;
    let mut mem = Memory::new();
    let reg = SimAacMaxRegister::new(&mut mem, k, k as u64);
    let out = run_essential(
        &reg,
        &mut mem,
        k,
        EssentialConfig {
            f_k: 16,
            ..EssentialConfig::default()
        },
    );
    assert!(
        matches!(
            out.stop,
            StopReason::EssentialBelowThreshold
                | StopReason::EssentialTooSmall
                | StopReason::HalfCompleted
        ),
        "unexpected stop: {:?}",
        out.stop
    );
}

#[test]
fn essential_iterations_reflect_read_cost() {
    // O(1)-read registers must endure at least as many forced iterations
    // as O(log K)-read registers at the same K (Theorem 3's shape).
    let k = 256;
    let mut mem = Memory::new();
    let tree = SimTreeMaxRegister::new(&mut mem, k);
    let tree_out = run_essential(&tree, &mut mem, k, EssentialConfig::default());

    let mut mem2 = Memory::new();
    let aac = SimAacMaxRegister::new(&mut mem2, k, k as u64);
    let aac_out = run_essential(
        &aac,
        &mut mem2,
        k,
        EssentialConfig {
            f_k: 9, // measured O(log K) read cost
            ..EssentialConfig::default()
        },
    );
    assert!(
        tree_out.iterations >= aac_out.iterations,
        "O(1)-read register endured fewer iterations ({}) than O(log K)-read one ({})",
        tree_out.iterations,
        aac_out.iterations
    );
}
