//! Exhaustive small-scope verification: every interleaving of small
//! concurrent workloads is enumerated and checked — bounded model
//! checking of the implementations, complementing the randomized tests.
//!
//! Highlights:
//!
//! * Algorithm A is verified linearizable under *all* schedules of two
//!   concurrent writes plus a trailing read (thousands of schedules);
//! * the single-CAS variant's violation is **rediscovered
//!   automatically** — no hand-crafted schedule needed;
//! * the CAS-loop counter and the double-collect snapshot's update path
//!   are exhaustively exact.

use std::sync::Arc;

use ruo::core::maxreg::sim::{SimMaxRegister, SimTreeMaxRegister};
use ruo::core::shape::AlgorithmATree;
use ruo::sim::explore::{assert_all_schedules_pass, enumerate, ExploreOp};
use ruo::sim::lin::check_max_register;
use ruo::sim::{
    cas, done, read, write, Machine, Memory, ObjId, OpDesc, ProcessId, Step, Word, NEG_INF,
};

/// One `WriteMax(1)` racing two readers against the real Algorithm A:
/// fully exhaustive (the write is 10 events, each reader 1), checking
/// stale-read and read-monotonicity in every interleaving.
#[test]
fn algorithm_a_exhaustive_one_writer_two_readers() {
    let setup = || {
        let mut mem = Memory::new();
        // N = 2: the value-1 leaf is TL's single leaf at depth 1, so the
        // write is exactly 10 events (2 leaf + 8 propagation).
        let reg = SimTreeMaxRegister::new(&mut mem, 2);
        let machines = vec![
            reg.write_max(ProcessId(0), 1),
            reg.read_max(ProcessId(1)),
            reg.read_max(ProcessId(1)),
        ];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(1),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ];
    let schedules = assert_all_schedules_pass(
        &setup,
        &ops,
        &mut |h| check_max_register(h, 0).is_ok(),
        100_000,
    );
    // (10 + 1 + 1)! / 10! = 132 interleavings.
    assert_eq!(schedules, 132);
}

/// Two concurrent `WriteMax`es (a dominated-value race on a shared TL
/// leaf) plus a reader, against the real Algorithm A. The interleaving
/// space is huge, so the search is budget-bounded: within the explored
/// prefix no schedule may violate linearizability. (The fully
/// exhaustive variants above and the randomized suite cover the rest.)
#[test]
fn algorithm_a_bounded_two_writers_one_reader() {
    let setup = || {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, 2);
        let machines = vec![
            reg.write_max(ProcessId(0), 1), // shared TL leaf
            reg.write_max(ProcessId(1), 1), // same value: the helping path
            reg.read_max(ProcessId(2)),
        ];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(1),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::WriteMax(1),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ];
    let summary = enumerate(
        &setup,
        &ops,
        &mut |h| check_max_register(h, 0).is_ok(),
        300_000,
    );
    assert!(
        summary.violation.is_none(),
        "violating schedule: {:?}",
        summary.violation
    );
    assert!(
        summary.schedules >= 100_000,
        "explored {}",
        summary.schedules
    );
    println!(
        "algorithm A same-value race: {} schedules checked (truncated: {})",
        summary.schedules, summary.truncated
    );
}

/// The single-CAS variant of Algorithm A (the fault injected in
/// `failure_injection.rs`), explored exhaustively: the search *finds*
/// a violating schedule on its own.
#[test]
fn exploration_rediscovers_the_single_cas_bug() {
    type Levels = Arc<Vec<(ObjId, Option<ObjId>, Option<ObjId>)>>;

    fn level(levels: Levels, i: usize) -> Step {
        if i == levels.len() {
            return done(0);
        }
        let (node, l, r) = levels[i];
        let rd = move |o: Option<ObjId>, k: Box<dyn FnOnce(Word) -> Step + Send>| match o {
            Some(o) => read(o, k),
            None => k(NEG_INF),
        };
        read(node, move |old| {
            rd(
                l,
                Box::new(move |lv| {
                    rd(
                        r,
                        Box::new(move |rv| {
                            // Single CAS per level: the injected fault.
                            cas(node, old, lv.max(rv), move |_| level(levels, i + 1))
                        }),
                    )
                }),
            )
        })
    }

    fn broken_write(
        tree: &Arc<AlgorithmATree>,
        cells: &Arc<Vec<ObjId>>,
        pid: usize,
        v: u64,
    ) -> Machine {
        let leaf = tree.leaf_for(pid, v);
        let shape = tree.shape();
        let levels: Levels = Arc::new(
            shape
                .ancestors(leaf)
                .into_iter()
                .map(|a| {
                    let info = shape.node(a);
                    (
                        cells[a],
                        info.left.map(|i| cells[i]),
                        info.right.map(|i| cells[i]),
                    )
                })
                .collect(),
        );
        let leaf_cell = cells[leaf];
        let w = v as Word;
        Machine::new(read(leaf_cell, move |old| {
            if w <= old {
                done(0)
            } else {
                write(leaf_cell, w, move || level(levels, 0))
            }
        }))
    }

    let setup = || {
        let mut mem = Memory::new();
        let tree = Arc::new(AlgorithmATree::new(2));
        let cells = Arc::new(mem.alloc_n(tree.shape().len(), NEG_INF));
        let root = cells[tree.root()];
        let machines = vec![
            broken_write(&tree, &cells, 0, 2),
            broken_write(&tree, &cells, 1, 3),
            Machine::new(read(root, |v| done(v.max(0)))),
        ];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(2),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::WriteMax(3),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ];
    let summary = enumerate(
        &setup,
        &ops,
        &mut |h| check_max_register(h, 0).is_ok(),
        2_000_000,
    );
    let schedule = summary
        .violation
        .expect("exploration must find the single-CAS violation");
    println!(
        "single-CAS bug found after {} schedules; violating order: {:?}",
        summary.schedules, schedule
    );
    // Sanity: the violating schedule involves both writers before the
    // reader finishes.
    assert!(schedule.contains(&ProcessId(0)));
    assert!(schedule.contains(&ProcessId(1)));
}

/// Double-collect snapshot updates are exhaustively exact: every
/// interleaving of two updates leaves both segments set.
#[test]
fn double_collect_updates_exhaustive() {
    use ruo::core::snapshot::sim::{SimDoubleCollectSnapshot, SimSnapshot};

    let setup = || {
        let mut mem = Memory::new();
        let snap = SimDoubleCollectSnapshot::new(&mut mem, 2);
        let machines = vec![snap.update(ProcessId(0), 7), snap.update(ProcessId(1), 9)];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::Update(7),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::Update(9),
            returns_value: false,
        },
    ];
    let schedules = assert_all_schedules_pass(&setup, &ops, &mut |h| h.len() == 2, 10_000);
    // Two 2-step updates on distinct segments: C(4,2) = 6 interleavings.
    assert_eq!(schedules, 6);
}

/// The f-array counter's increments are exhaustively exact for two
/// processes: after every interleaving the root equals 2.
#[test]
fn farray_increments_exhaustive() {
    use ruo::core::counter::sim::{SimCounter, SimFArrayCounter};

    // Enumerate increment interleavings; verify by appending a solo read
    // in the checker via a fresh replay (the checker only sees the
    // history, so assert on history validity and rely on the follow-up
    // read test below).
    let setup = || {
        let mut mem = Memory::new();
        let c = SimFArrayCounter::new(&mut mem, 2);
        let machines = vec![c.increment(ProcessId(0)), c.increment(ProcessId(1))];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::CounterIncrement,
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::CounterIncrement,
            returns_value: false,
        },
    ];
    let schedules = assert_all_schedules_pass(
        &setup,
        &ops,
        &mut ruo::sim::explore::history_is_wellformed,
        1_000_000,
    );
    assert!(schedules > 100, "two ~10-step increments: many schedules");
}
