//! Exhaustive small-scope verification: every interleaving of small
//! concurrent workloads is enumerated and checked — bounded model
//! checking of the implementations, complementing the randomized tests.
//!
//! Highlights:
//!
//! * Algorithm A is verified linearizable under *all* schedules of two
//!   concurrent writes plus a trailing read (thousands of schedules);
//! * the single-CAS variant's violation is **rediscovered
//!   automatically** — no hand-crafted schedule needed;
//! * the CAS-loop counter and the double-collect snapshot's update path
//!   are exhaustively exact.

use std::sync::Arc;

use ruo::core::maxreg::sim::{SimMaxRegister, SimTreeMaxRegister};
use ruo::core::shape::AlgorithmATree;
use ruo::metrics::ExploreGauges;
use ruo::sim::explore::{assert_all_schedules_pass, enumerate, explore, ExploreConfig, ExploreOp};
use ruo::sim::lin::{check_exact, check_max_register};
use ruo::sim::spec::SeqSpec;
use ruo::sim::{
    cas, done, read, write, Machine, Memory, ObjId, OpDesc, ProcessId, Step, Word, NEG_INF,
};

/// One `WriteMax(1)` racing two readers against the real Algorithm A:
/// fully exhaustive (the write is 10 events, each reader 1), checking
/// stale-read and read-monotonicity in every interleaving.
#[test]
fn algorithm_a_exhaustive_one_writer_two_readers() {
    let setup = || {
        let mut mem = Memory::new();
        // N = 2: the value-1 leaf is TL's single leaf at depth 1, so the
        // write is exactly 10 events (2 leaf + 8 propagation).
        let reg = SimTreeMaxRegister::new(&mut mem, 2);
        let machines = vec![
            reg.write_max(ProcessId(0), 1),
            reg.read_max(ProcessId(1)),
            reg.read_max(ProcessId(1)),
        ];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(1),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ];
    let schedules = assert_all_schedules_pass(
        &setup,
        &ops,
        &mut |h| check_max_register(h, 0).is_ok(),
        100_000,
    );
    // (10 + 1 + 1)! / 10! = 132 interleavings.
    assert_eq!(schedules, 132);
}

/// Two concurrent `WriteMax`es (a dominated-value race on a shared TL
/// leaf) plus a reader, against the real Algorithm A. The interleaving
/// space is huge, so the search is budget-bounded: within the explored
/// prefix no schedule may violate linearizability. (The fully
/// exhaustive variants above and the randomized suite cover the rest.)
#[test]
fn algorithm_a_bounded_two_writers_one_reader() {
    let setup = || {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::new(&mut mem, 2);
        let machines = vec![
            reg.write_max(ProcessId(0), 1), // shared TL leaf
            reg.write_max(ProcessId(1), 1), // same value: the helping path
            reg.read_max(ProcessId(2)),
        ];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(1),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::WriteMax(1),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ];
    let summary = enumerate(
        &setup,
        &ops,
        &mut |h| check_max_register(h, 0).is_ok(),
        300_000,
    );
    assert!(
        summary.violation.is_none(),
        "violating schedule: {:?}",
        summary.violation
    );
    assert!(
        summary.schedules >= 100_000,
        "explored {}",
        summary.schedules
    );
    println!(
        "algorithm A same-value race: {} schedules checked (truncated: {})",
        summary.schedules, summary.truncated
    );
}

/// The single-CAS variant of Algorithm A (the fault injected in
/// `failure_injection.rs`), explored exhaustively: the search *finds*
/// a violating schedule on its own.
#[test]
fn exploration_rediscovers_the_single_cas_bug() {
    type Levels = Arc<Vec<(ObjId, Option<ObjId>, Option<ObjId>)>>;

    fn level(levels: Levels, i: usize) -> Step {
        if i == levels.len() {
            return done(0);
        }
        let (node, l, r) = levels[i];
        let rd = move |o: Option<ObjId>, k: Box<dyn FnOnce(Word) -> Step + Send>| match o {
            Some(o) => read(o, k),
            None => k(NEG_INF),
        };
        read(node, move |old| {
            rd(
                l,
                Box::new(move |lv| {
                    rd(
                        r,
                        Box::new(move |rv| {
                            // Single CAS per level: the injected fault.
                            cas(node, old, lv.max(rv), move |_| level(levels, i + 1))
                        }),
                    )
                }),
            )
        })
    }

    fn broken_write(
        tree: &Arc<AlgorithmATree>,
        cells: &Arc<Vec<ObjId>>,
        pid: usize,
        v: u64,
    ) -> Machine {
        let leaf = tree.leaf_for(pid, v);
        let shape = tree.shape();
        let levels: Levels = Arc::new(
            shape
                .ancestors(leaf)
                .into_iter()
                .map(|a| {
                    let info = shape.node(a);
                    (
                        cells[a],
                        info.left.map(|i| cells[i]),
                        info.right.map(|i| cells[i]),
                    )
                })
                .collect(),
        );
        let leaf_cell = cells[leaf];
        let w = v as Word;
        Machine::new(read(leaf_cell, move |old| {
            if w <= old {
                done(0)
            } else {
                write(leaf_cell, w, move || level(levels, 0))
            }
        }))
    }

    let setup = || {
        let mut mem = Memory::new();
        let tree = Arc::new(AlgorithmATree::new(2));
        let cells = Arc::new(mem.alloc_n(tree.shape().len(), NEG_INF));
        let root = cells[tree.root()];
        let machines = vec![
            broken_write(&tree, &cells, 0, 2),
            broken_write(&tree, &cells, 1, 3),
            Machine::new(read(root, |v| done(v.max(0)))),
        ];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(2),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::WriteMax(3),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ];
    let summary = enumerate(
        &setup,
        &ops,
        &mut |h| check_max_register(h, 0).is_ok(),
        2_000_000,
    );
    let schedule = summary
        .violation
        .expect("exploration must find the single-CAS violation");
    println!(
        "single-CAS bug found after {} schedules; violating order: {:?}",
        summary.schedules, schedule
    );
    // Sanity: the violating schedule involves both writers before the
    // reader finishes.
    assert!(schedule.contains(&ProcessId(0)));
    assert!(schedule.contains(&ProcessId(1)));

    // Soundness of sleep-set pruning: the *pruned* search must rediscover
    // the same bug — pruning may only drop schedules whose histories are
    // equivalent to one it keeps, never an entire violation class.
    let pruned = explore(
        &setup,
        &ops,
        &mut |h| check_max_register(h, 0).is_ok(),
        ExploreConfig {
            max_schedules: 2_000_000,
            prune: true,
            max_crashes: 0,
        },
    );
    let pruned_schedule = pruned
        .violation
        .expect("pruned exploration must also find the single-CAS violation");
    assert!(pruned_schedule.contains(&ProcessId(0)));
    assert!(pruned_schedule.contains(&ProcessId(1)));
    assert!(
        pruned.schedules <= summary.schedules,
        "pruning must not explore more schedules ({} vs {})",
        pruned.schedules,
        summary.schedules
    );
    println!(
        "single-CAS bug with pruning: found after {} schedules ({} branches pruned)",
        pruned.schedules, pruned.stats.pruned_branches
    );
}

/// The scaled scope the incremental explorer exists for: three writers
/// plus a reader against the real Algorithm A on `N = 4`, with the
/// § 4.5 dominated-write fast path enabled. Two of the writes are
/// dominated by a seeded `WriteMax(3)`, so they resolve in one root
/// read; the search stays fully exhaustive (un-truncated) both with and
/// without pruning, and the histories pass both the exact checker and
/// the fast max-register checker.
#[test]
fn scaled_scope_three_writers_one_reader_fast_path() {
    let setup = || {
        let mut mem = Memory::new();
        let reg = SimTreeMaxRegister::with_root_fast_path(&mut mem, 4);
        // Seed: WriteMax(3) runs solo to completion before the scope —
        // afterwards the root holds 3 and dominates two of the writers.
        let mut seed = reg.write_max(ProcessId(0), 3);
        while let Some(prim) = seed.enabled() {
            let resp = mem.apply(ProcessId(0), prim);
            seed.feed(resp);
        }
        let machines = vec![
            reg.write_max(ProcessId(0), 4), // not dominated: probe + full write
            reg.write_max(ProcessId(1), 2), // strictly dominated: 1 root read
            reg.write_max(ProcessId(2), 3), // equal value, dominated: 1 root read
            reg.read_max(ProcessId(3)),
        ];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::WriteMax(4),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::WriteMax(2),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(2),
            desc: OpDesc::WriteMax(3),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(3),
            desc: OpDesc::ReadMax,
            returns_value: true,
        },
    ];
    let spec = SeqSpec::MaxRegister { initial: 3 };
    let mut check = |h: &ruo::sim::History| {
        // The § 4.5 fast path must hold in *every* interleaving: a
        // dominated write is exactly one shared-memory event.
        for op in h.ops() {
            match op.desc {
                OpDesc::WriteMax(2) | OpDesc::WriteMax(3) => assert_eq!(
                    op.steps, 1,
                    "dominated write took {} steps, want the O(1) fast path",
                    op.steps
                ),
                _ => {}
            }
        }
        check_exact(h, &spec).is_ok() && check_max_register(h, 3).is_ok()
    };

    let full = enumerate(&setup, &ops, &mut check, 100_000);
    assert!(full.violation.is_none(), "violation: {:?}", full.violation);
    assert!(!full.truncated, "scope must complete un-truncated");
    // 27-step write + three 1-step ops: 30!/27! = 30·29·28 interleavings.
    assert_eq!(full.schedules, 24_360);

    let pruned = explore(
        &setup,
        &ops,
        &mut check,
        ExploreConfig {
            max_schedules: 100_000,
            prune: true,
            max_crashes: 0,
        },
    );
    assert!(
        pruned.violation.is_none(),
        "violation: {:?}",
        pruned.violation
    );
    assert!(!pruned.truncated, "pruned scope must complete un-truncated");
    assert!(
        pruned.schedules < full.schedules,
        "pruning must shrink the search ({} vs {})",
        pruned.schedules,
        full.schedules
    );
    assert!(pruned.stats.pruned_branches > 0);
    assert!(
        pruned.stats.replay_steps_saved > pruned.stats.executed_steps,
        "incremental replay must save more than it executes at this depth"
    );

    // Report both runs through the ruo-metrics exploration gauges.
    let gauges = ExploreGauges::new(2);
    gauges.record(ProcessId(0), &full.stats);
    gauges.record(ProcessId(1), &pruned.stats);
    assert_eq!(
        gauges.schedules(),
        (full.schedules + pruned.schedules) as u64
    );
    assert!(gauges.peak_depth() > 0);
    println!(
        "scaled scope: {} full schedules, {} pruned schedules, gauges: {:?}",
        full.schedules, pruned.schedules, gauges
    );
}

/// Double-collect snapshot updates are exhaustively exact: every
/// interleaving of two updates leaves both segments set.
#[test]
fn double_collect_updates_exhaustive() {
    use ruo::core::snapshot::sim::{SimDoubleCollectSnapshot, SimSnapshot};

    let setup = || {
        let mut mem = Memory::new();
        let snap = SimDoubleCollectSnapshot::new(&mut mem, 2);
        let machines = vec![snap.update(ProcessId(0), 7), snap.update(ProcessId(1), 9)];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::Update(7),
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::Update(9),
            returns_value: false,
        },
    ];
    let schedules = assert_all_schedules_pass(&setup, &ops, &mut |h| h.len() == 2, 10_000);
    // Two 2-step updates on distinct segments: C(4,2) = 6 interleavings.
    assert_eq!(schedules, 6);
}

/// The f-array counter's increments are exhaustively exact for two
/// processes: after every interleaving the root equals 2.
#[test]
fn farray_increments_exhaustive() {
    use ruo::core::counter::sim::{SimCounter, SimFArrayCounter};

    // Enumerate increment interleavings; verify by appending a solo read
    // in the checker via a fresh replay (the checker only sees the
    // history, so assert on history validity and rely on the follow-up
    // read test below).
    let setup = || {
        let mut mem = Memory::new();
        let c = SimFArrayCounter::new(&mut mem, 2);
        let machines = vec![c.increment(ProcessId(0)), c.increment(ProcessId(1))];
        (mem, machines)
    };
    let ops = vec![
        ExploreOp {
            pid: ProcessId(0),
            desc: OpDesc::CounterIncrement,
            returns_value: false,
        },
        ExploreOp {
            pid: ProcessId(1),
            desc: OpDesc::CounterIncrement,
            returns_value: false,
        },
    ];
    let schedules = assert_all_schedules_pass(
        &setup,
        &ops,
        &mut ruo::sim::explore::history_is_wellformed,
        1_000_000,
    );
    assert!(schedules > 100, "two ~10-step increments: many schedules");
}
