//! Linearizability of the simulator implementations under randomized
//! adversarial schedules (experiment T5, simulator half).
//!
//! Every implementation is run under many seeded random schedules; the
//! resulting histories are checked with the per-object sound checkers,
//! and — for small workloads — with the exact Wing–Gong search, which
//! also cross-validates the fast checkers.

use std::sync::Arc;

use ruo::core::counter::sim::{SimAacCounter, SimCasLoopCounter, SimCounter, SimFArrayCounter};
use ruo::core::maxreg::sim::{
    SimAacMaxRegister, SimCasRetryMaxRegister, SimMaxRegister, SimTreeMaxRegister,
};
use ruo::core::snapshot::sim::{SimDoubleCollectSnapshot, SimSnapshot};
use ruo::sim::history::OpDesc;
use ruo::sim::lin::{check_counter, check_exact, check_max_register, check_snapshot};
use ruo::sim::spec::SeqSpec;
use ruo::sim::{Executor, Memory, OpSpec, ProcessId, RandomScheduler, WorkloadBuilder};

/// Builds a mixed read/write max-register workload: each process does
/// `ops` operations alternating writes (of distinct growing values) and
/// reads.
fn maxreg_workload(reg: &Arc<dyn SimMaxRegister>, n: usize, ops: usize) -> WorkloadBuilder {
    let mut w = WorkloadBuilder::new(n);
    for p in 0..n {
        for i in 0..ops {
            let pid = ProcessId(p);
            if i % 2 == 0 {
                let v = (i * n + p + 1) as u64;
                let reg = Arc::clone(reg);
                w.op(
                    pid,
                    OpSpec::update(OpDesc::WriteMax(v as i64), move || reg.write_max(pid, v)),
                );
            } else {
                let reg = Arc::clone(reg);
                w.op(
                    pid,
                    OpSpec::value(OpDesc::ReadMax, move || reg.read_max(pid)),
                );
            }
        }
    }
    w
}

fn check_maxreg_impl(make: impl Fn(&mut Memory, usize) -> Arc<dyn SimMaxRegister>, name: &str) {
    // Large randomized runs through the fast checker.
    for seed in 0..30 {
        let mut mem = Memory::new();
        let n = 4;
        let reg = make(&mut mem, n);
        let outcome = Executor::new().run(
            &mut mem,
            maxreg_workload(&reg, n, 6),
            &mut RandomScheduler::new(seed),
        );
        assert!(outcome.all_done, "{name} seed {seed}: workload incomplete");
        check_max_register(&outcome.history, 0)
            .unwrap_or_else(|v| panic!("{name} seed {seed}: {v}"));
    }
    // Small runs through the exact checker too.
    for seed in 0..20 {
        let mut mem = Memory::new();
        let n = 3;
        let reg = make(&mut mem, n);
        let outcome = Executor::new().run(
            &mut mem,
            maxreg_workload(&reg, n, 3),
            &mut RandomScheduler::new(seed),
        );
        let spec = SeqSpec::MaxRegister { initial: 0 };
        check_exact(&outcome.history, &spec)
            .unwrap_or_else(|v| panic!("{name} seed {seed} (exact): {v}"));
        check_max_register(&outcome.history, 0)
            .unwrap_or_else(|v| panic!("{name} seed {seed} (fast): {v}"));
    }
}

#[test]
fn tree_max_register_is_linearizable_under_random_schedules() {
    check_maxreg_impl(
        |mem, n| Arc::new(SimTreeMaxRegister::new(mem, n)),
        "SimTreeMaxRegister",
    );
}

#[test]
fn aac_max_register_is_linearizable_under_random_schedules() {
    check_maxreg_impl(
        |mem, n| Arc::new(SimAacMaxRegister::new(mem, n, 1 << 10)),
        "SimAacMaxRegister",
    );
}

#[test]
fn cas_retry_max_register_is_linearizable_under_random_schedules() {
    check_maxreg_impl(
        |mem, n| Arc::new(SimCasRetryMaxRegister::new(mem, n)),
        "SimCasRetryMaxRegister",
    );
}

fn counter_workload(c: &Arc<dyn SimCounter>, n: usize, ops: usize) -> WorkloadBuilder {
    let mut w = WorkloadBuilder::new(n);
    for p in 0..n {
        for i in 0..ops {
            let pid = ProcessId(p);
            let c2 = Arc::clone(c);
            if i % 2 == 0 {
                w.op(
                    pid,
                    OpSpec::update(OpDesc::CounterIncrement, move || c2.increment(pid)),
                );
            } else {
                w.op(
                    pid,
                    OpSpec::value(OpDesc::CounterRead, move || c2.read(pid)),
                );
            }
        }
    }
    w
}

fn check_counter_impl(make: impl Fn(&mut Memory, usize) -> Arc<dyn SimCounter>, name: &str) {
    for seed in 0..30 {
        let mut mem = Memory::new();
        let n = 4;
        let c = make(&mut mem, n);
        let outcome = Executor::new().run(
            &mut mem,
            counter_workload(&c, n, 6),
            &mut RandomScheduler::new(seed),
        );
        assert!(outcome.all_done);
        check_counter(&outcome.history).unwrap_or_else(|v| panic!("{name} seed {seed}: {v}"));
    }
    for seed in 0..20 {
        let mut mem = Memory::new();
        let n = 3;
        let c = make(&mut mem, n);
        let outcome = Executor::new().run(
            &mut mem,
            counter_workload(&c, n, 3),
            &mut RandomScheduler::new(seed),
        );
        check_exact(&outcome.history, &SeqSpec::Counter)
            .unwrap_or_else(|v| panic!("{name} seed {seed} (exact): {v}"));
    }
}

#[test]
fn farray_counter_is_linearizable_under_random_schedules() {
    check_counter_impl(
        |mem, n| Arc::new(SimFArrayCounter::new(mem, n)),
        "SimFArrayCounter",
    );
}

#[test]
fn aac_counter_is_linearizable_under_random_schedules() {
    check_counter_impl(
        |mem, n| Arc::new(SimAacCounter::new(mem, n, 64)),
        "SimAacCounter",
    );
}

#[test]
fn cas_loop_counter_is_linearizable_under_random_schedules() {
    check_counter_impl(
        |mem, n| Arc::new(SimCasLoopCounter::new(mem, n)),
        "SimCasLoopCounter",
    );
}

#[test]
fn double_collect_snapshot_is_linearizable_under_random_schedules() {
    for seed in 0..30 {
        let mut mem = Memory::new();
        let n = 3;
        let snap = Arc::new(SimDoubleCollectSnapshot::new(&mut mem, n));
        let mut w = WorkloadBuilder::new(n);
        for p in 0..n {
            let pid = ProcessId(p);
            for i in 0..4u64 {
                if i % 2 == 0 {
                    let s = Arc::clone(&snap);
                    // Distinct values per process: p*100 + i.
                    let v = p as u64 * 100 + i + 1;
                    w.op(
                        pid,
                        OpSpec::update(OpDesc::Update(v as i64), move || s.update(pid, v)),
                    );
                } else {
                    let s = Arc::clone(&snap);
                    let s2 = Arc::clone(&snap);
                    w.op(
                        pid,
                        OpSpec::vector(
                            OpDesc::Scan,
                            move || s.scan(pid),
                            move |token| {
                                s2.take_scan_result(token)
                                    .into_iter()
                                    .map(|v| v as i64)
                                    .collect()
                            },
                        ),
                    );
                }
            }
        }
        // Scans are obstruction-free: budget the execution and strip any
        // starved scans before checking.
        let outcome =
            Executor::with_step_budget(100_000).run(&mut mem, w, &mut RandomScheduler::new(seed));
        assert!(outcome.all_done, "seed {seed}: scan starved within budget");
        check_snapshot(&outcome.history, n, 0).unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        check_exact(&outcome.history, &SeqSpec::Snapshot { n, initial: 0 })
            .unwrap_or_else(|v| panic!("seed {seed} (exact): {v}"));
    }
}
